#include "power/tracker.h"

#include <algorithm>

#include "support/errors.h"
#include "support/kernels.h"

namespace phls {

namespace {

/// Rightmost leaf in [lo, hi) of the subtree `node` (covering
/// [node_lo, node_hi)) whose value violates `value + power > limit`,
/// or -1.  The subtree test is exact: the node holds the max of its
/// leaves, that max is itself a leaf value, and IEEE rounding is
/// monotone, so fl(max + power) > limit iff some leaf violates.
int rightmost_violation(const std::vector<double>& tree, int node, int node_lo,
                        int node_hi, int lo, int hi, double power, double limit)
{
    if (node_hi <= lo || hi <= node_lo) return -1;
    if (!(tree[static_cast<std::size_t>(node)] + power > limit)) return -1;
    if (node_lo + 1 == node_hi) return node_lo;
    const int mid = node_lo + (node_hi - node_lo) / 2;
    const int right =
        rightmost_violation(tree, 2 * node + 1, mid, node_hi, lo, hi, power, limit);
    if (right >= 0) return right;
    return rightmost_violation(tree, 2 * node, node_lo, mid, lo, hi, power, limit);
}

/// Leftmost leaf >= lo whose value satisfies `value + power <= limit`,
/// or -1; exact by the same monotonicity argument over the min tree.
int leftmost_clean(const std::vector<double>& tree, int node, int node_lo, int node_hi,
                   int lo, double power, double limit)
{
    if (node_hi <= lo) return -1;
    if (tree[static_cast<std::size_t>(node)] + power > limit) return -1;
    if (node_lo + 1 == node_hi) return node_lo;
    const int mid = node_lo + (node_hi - node_lo) / 2;
    const int left = leftmost_clean(tree, 2 * node, node_lo, mid, lo, power, limit);
    if (left >= 0) return left;
    return leftmost_clean(tree, 2 * node + 1, mid, node_hi, lo, power, limit);
}

/// Iterative rightmost_violation over the canonical segment-tree
/// decomposition of [lo, hi): collect the O(log H) covering nodes
/// bottom-up, scan them right-to-left, and descend right-child-first
/// into the first one whose max violates.  Same predicate expression,
/// same exactness argument, no recursion.
int rightmost_violation_iter(const std::vector<double>& tree, int leaves, int lo,
                             int hi, double power, double limit)
{
    int lnodes[64];
    int rnodes[64];
    int ln = 0;
    int rn = 0;
    int l = leaves + lo;
    int r = leaves + hi;
    while (l < r) {
        if (l & 1) lnodes[ln++] = l++;
        if (r & 1) rnodes[rn++] = --r;
        l >>= 1;
        r >>= 1;
    }
    // rnodes[0..rn) covers the range right-to-left, lnodes[0..ln)
    // left-to-right; scan for the rightmost covering node that violates.
    int hit = -1;
    for (int i = 0; i < rn && hit < 0; ++i)
        if (tree[static_cast<std::size_t>(rnodes[i])] + power > limit) hit = rnodes[i];
    for (int i = ln - 1; i >= 0 && hit < 0; --i)
        if (tree[static_cast<std::size_t>(lnodes[i])] + power > limit) hit = lnodes[i];
    if (hit < 0) return -1;
    while (hit < leaves) {
        hit = 2 * hit + 1;
        if (!(tree[static_cast<std::size_t>(hit)] + power > limit)) --hit;
    }
    return hit - leaves;
}

/// Iterative leftmost_clean: climb from leaf `lo` over the subtrees to
/// its right until one holds a clean leaf, then descend left-child-first.
int leftmost_clean_iter(const std::vector<double>& tree, int leaves, int lo,
                        double power, double limit)
{
    int p = leaves + lo;
    while (true) {
        if (!(tree[static_cast<std::size_t>(p)] + power > limit)) {
            while (p < leaves) {
                p = 2 * p;
                if (tree[static_cast<std::size_t>(p)] + power > limit) ++p;
            }
            return p - leaves;
        }
        while (p != 1 && (p & 1)) p >>= 1;
        if (p == 1) return -1;
        ++p;
    }
}

} // namespace

bool power_tracker::fits(int start, int duration, double power) const
{
    if (power > cap_ + tolerance) return false;
    if (kernel_knobs().dense_power) {
        // Scan the contiguous per-cycle slab directly instead of paying
        // profile_.at()'s bounds check + horizon branch per cycle.
        // Cycles past the horizon hold 0 and cannot violate (power alone
        // fits, checked above), so only the in-horizon prefix is probed.
        check(start >= 0 || duration <= 0, "power_profile::at: negative cycle");
        const double limit = cap_ + tolerance;
        const std::vector<double>& v = profile_.values();
        const int end = std::min(start + duration, profile_.cycle_count());
        for (int c = start; c < end; ++c)
            if (v[static_cast<std::size_t>(c)] + power > limit) return false;
        return true;
    }
    for (int c = start; c < start + duration; ++c)
        if (profile_.at(c) + power > cap_ + tolerance) return false;
    return true;
}

int power_tracker::next_fit(int start, int duration, double power) const
{
    check(start >= 0, "power_tracker::next_fit: negative start");
    if (power > cap_ + tolerance) return -1;
    if (duration <= 0) return start;
    ensure_tree();
    const int horizon = profile_.cycle_count();
    int t = start;
    while (t < horizon) {
        // Cycles at or past the horizon hold 0 and cannot violate (power
        // itself fits the cap), so only [t, min(t+d, horizon)) is probed.
        const int c = last_violation(t, std::min(t + duration, horizon), power);
        if (c < 0) return t;
        // Every start in (t, c] still covers cycle c, and starts beyond
        // it must begin on a cycle with headroom: leap the whole blocked
        // stretch in one descent.
        t = first_clean(c + 1, power);
    }
    return t;
}

int power_tracker::last_violation(int lo, int hi, double power) const
{
    if (leaves_ == 0 || hi <= lo) return -1;
    if (kernel_knobs().dense_power)
        return rightmost_violation_iter(tree_max_, leaves_, lo, std::min(hi, leaves_),
                                        power, cap_ + tolerance);
    return rightmost_violation(tree_max_, 1, 0, leaves_, lo, std::min(hi, leaves_), power,
                               cap_ + tolerance);
}

int power_tracker::first_clean(int from, double power) const
{
    if (from >= leaves_) return from; // past the tree: free cycles
    const int c =
        kernel_knobs().dense_power
            ? leftmost_clean_iter(tree_min_, leaves_, from, power, cap_ + tolerance)
            : leftmost_clean(tree_min_, 1, 0, leaves_, from, power, cap_ + tolerance);
    return c >= 0 ? c : leaves_;
}

double power_tracker::headroom(int start, int duration) const
{
    check(start >= 0 && duration >= 0, "power_tracker::headroom: bad interval");
    const int end = std::min(start + duration, profile_.cycle_count());
    if (end <= start) return cap_; // empty window, or wholly past the horizon
    ensure_tree();
    // Canonical segment-tree decomposition of [start, end): the max of
    // the O(log H) covering nodes is the max per-cycle usage.
    double used = 0.0;
    int l = leaves_ + start;
    int r = leaves_ + end;
    while (l < r) {
        if (l & 1) used = std::max(used, tree_max_[static_cast<std::size_t>(l++)]);
        if (r & 1) used = std::max(used, tree_max_[static_cast<std::size_t>(--r)]);
        l >>= 1;
        r >>= 1;
    }
    return cap_ - used;
}

void power_tracker::ensure_tree() const
{
    const int n = profile_.cycle_count();
    if (leaves_ > 0 || n == 0) return;
    int cap = 64;
    while (cap < n) cap *= 2;
    leaves_ = cap;
    tree_max_.assign(2 * static_cast<std::size_t>(leaves_), 0.0);
    tree_min_.assign(2 * static_cast<std::size_t>(leaves_), 0.0);
    const std::vector<double>& v = profile_.values();
    for (int c = 0; c < n; ++c) {
        tree_max_[static_cast<std::size_t>(leaves_ + c)] = v[c];
        tree_min_[static_cast<std::size_t>(leaves_ + c)] = v[c];
    }
    for (int i = leaves_ - 1; i >= 1; --i) {
        tree_max_[static_cast<std::size_t>(i)] =
            std::max(tree_max_[static_cast<std::size_t>(2 * i)],
                     tree_max_[static_cast<std::size_t>(2 * i + 1)]);
        tree_min_[static_cast<std::size_t>(i)] =
            std::min(tree_min_[static_cast<std::size_t>(2 * i)],
                     tree_min_[static_cast<std::size_t>(2 * i + 1)]);
    }
}

void power_tracker::sync_tree(int start, int end) const
{
    if (leaves_ == 0) return; // no tree yet: nothing to keep in sync
    const int n = profile_.cycle_count();
    end = std::min(end, n);
    if (end <= start) return;
    const std::vector<double>& v = profile_.values();
    if (n > leaves_) {
        // Grow to the next power of two and rebuild (amortised over the
        // deposits that caused the growth).
        leaves_ = 0;
        ensure_tree();
        return;
    }
    for (int c = start; c < end; ++c) {
        tree_max_[static_cast<std::size_t>(leaves_ + c)] = v[c];
        tree_min_[static_cast<std::size_t>(leaves_ + c)] = v[c];
    }
    int lo = (leaves_ + start) >> 1;
    int hi = (leaves_ + end - 1) >> 1;
    while (lo >= 1) {
        for (int i = lo; i <= hi; ++i) {
            tree_max_[static_cast<std::size_t>(i)] =
                std::max(tree_max_[static_cast<std::size_t>(2 * i)],
                         tree_max_[static_cast<std::size_t>(2 * i + 1)]);
            tree_min_[static_cast<std::size_t>(i)] =
                std::min(tree_min_[static_cast<std::size_t>(2 * i)],
                         tree_min_[static_cast<std::size_t>(2 * i + 1)]);
        }
        lo >>= 1;
        hi >>= 1;
    }
}

void power_tracker::reserve(int start, int duration, double power)
{
    check(fits(start, duration, power), "power_tracker::reserve would exceed the cap");
    profile_.deposit(start, duration, power);
    sync_tree(start, start + duration);
}

void power_tracker::release(int start, int duration, double power)
{
    profile_.withdraw(start, duration, power);
    sync_tree(start, start + duration);
}

std::vector<double> power_tracker::interval_values(int start, int duration) const
{
    check(start >= 0 && duration >= 0, "power_tracker::interval_values: bad interval");
    std::vector<double> values;
    values.reserve(static_cast<std::size_t>(duration));
    for (int c = start; c < start + duration; ++c) values.push_back(profile_.at(c));
    return values;
}

void power_tracker::restore_interval(int start, const std::vector<double>& values)
{
    // Cycles captured past the horizon read as 0 and still do (a rolled
    // back attempt may never have grown the profile that far); only the
    // in-horizon prefix is written back.
    const int in_horizon =
        std::clamp(profile_.cycle_count() - start, 0, static_cast<int>(values.size()));
    for (std::size_t i = static_cast<std::size_t>(in_horizon); i < values.size(); ++i)
        check(values[i] == 0.0,
              "power_tracker::restore_interval: non-zero value past the horizon");
    if (in_horizon > 0) profile_.overwrite(start, values.data(), in_horizon);
    sync_tree(start, start + in_horizon);
}

} // namespace phls
