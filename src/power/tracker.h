// Incremental power-availability bookkeeping for the pasap/palap
// schedulers and the clique partitioner.
//
// The tracker answers "does operation power p fit in every cycle of
// [start, start+duration) under the cap?" and records reservations so
// later queries see them.  Cycles beyond the current horizon are free.
#pragma once

#include <limits>

#include "power/profile.h"

namespace phls {

/// Reservation ledger against a per-cycle power cap.
class power_tracker {
public:
    /// `cap` may be infinity for unconstrained tracking.
    explicit power_tracker(double cap) : cap_(cap) {}

    double cap() const { return cap_; }

    /// True if depositing `power` over [start, start+duration) keeps every
    /// cycle at or below the cap (within a small tolerance for exact
    /// decimal sums such as Table 1's).
    bool fits(int start, int duration, double power) const;

    /// Records the reservation; call only after fits() (checked).
    void reserve(int start, int duration, double power);

    /// Removes a reservation previously made.
    void release(int start, int duration, double power);

    /// Power already reserved in `cycle`.
    double used(int cycle) const { return profile_.at(cycle); }

    const power_profile& profile() const { return profile_; }

    /// Tolerance used when comparing sums against the cap.
    static constexpr double tolerance = 1e-9;

private:
    double cap_;
    power_profile profile_;
};

/// Convenience: an infinite cap.
inline constexpr double unbounded_power = std::numeric_limits<double>::infinity();

} // namespace phls
