// Incremental power-availability bookkeeping for the pasap/palap
// schedulers and the clique partitioner.
//
// The tracker answers "does operation power p fit in every cycle of
// [start, start+duration) under the cap?" and records reservations so
// later queries see them.  Cycles beyond the current horizon are free.
//
// Two query paths exist:
//   * fits()     -- the reference linear scan over the interval;
//   * next_fit() -- the skip-ahead probe: the smallest feasible start at
//     or after a given cycle.  It is backed by a per-cycle headroom
//     structure (min/max segment trees over the exact per-cycle sums):
//     one max-tree descent finds the last violating cycle of the probed
//     interval, one min-tree descent leaps to the next cycle with
//     enough headroom, so a whole saturated stretch of the ledger is
//     crossed in O(log H) instead of the O(span * duration) of the
//     linear probe -- a probe costs O((runs + 1) * log H), where runs
//     counts the contiguous blocked stretches crossed.
// Both paths compare each cycle with the identical floating-point
// expression, so their placement decisions are bit-identical (the tree
// stores the exact profile values; IEEE rounding is monotone, so a
// subtree-max test equals "some cycle in the subtree violates").
#pragma once

#include <limits>
#include <vector>

#include "power/profile.h"

namespace phls {

/// Reservation ledger against a per-cycle power cap.
class power_tracker {
public:
    /// `cap` may be infinity for unconstrained tracking.
    explicit power_tracker(double cap) : cap_(cap) {}

    double cap() const { return cap_; }

    /// True if depositing `power` over [start, start+duration) keeps every
    /// cycle at or below the cap (within a small tolerance for exact
    /// decimal sums such as Table 1's).  Reference linear scan.
    bool fits(int start, int duration, double power) const;

    /// The smallest t >= start such that fits(t, duration, power), found
    /// by skipping directly past violating cycles via the headroom tree
    /// (a probe that fails at cycle c can only succeed at t > c).
    /// Returns -1 when `power` alone exceeds the cap (no t ever fits).
    /// Bit-identical to probing fits() at start, start+1, ... in turn.
    int next_fit(int start, int duration, double power) const;

    /// Records the reservation; call only after fits() (checked).
    void reserve(int start, int duration, double power);

    /// Removes a reservation previously made.  Re-subtracting can drift
    /// in the last ulp relative to the never-deposited state; rollback
    /// paths that need bit-exact unwinding should pair interval_values()
    /// with restore_interval() instead.
    void release(int start, int duration, double power);

    /// Exact per-cycle values over [start, start+duration), cycles past
    /// the horizon reading as 0.  Capture *before* reserve() to unwind it
    /// bit-exactly with restore_interval().
    std::vector<double> interval_values(int start, int duration) const;

    /// Overwrites [start, start+values.size()) with previously captured
    /// values (the headroom tree is kept in sync).  The horizon never
    /// shrinks; trailing restored zeros behave identically to
    /// never-deposited cycles.
    void restore_interval(int start, const std::vector<double>& values);

    /// Power already reserved in `cycle`.
    double used(int cycle) const { return profile_.at(cycle); }

    /// The headroom of [start, start+duration): the largest power `p`
    /// with fits(start, duration, p), i.e. cap - max per-cycle usage of
    /// the window (cycles past the horizon are free and read as 0; an
    /// empty window or an empty ledger returns the cap; an infinite cap
    /// returns infinity).  One range-max descent over the headroom tree,
    /// O(log H) -- the query the task scheduler asks per placement
    /// instead of re-deriving it from repeated next_fit probes.
    /// fits(start, duration, headroom(start, duration)) always holds.
    double headroom(int start, int duration) const;

    /// Forces the lazy headroom trees to exist.  next_fit() builds them
    /// on first use, which is a benign cache fill single-threaded but a
    /// data race when several scoring threads probe concurrently -- call
    /// this once before fanning out.  No-op when the trees exist or the
    /// profile is still empty.
    void prepare_probes() const { ensure_tree(); }

    const power_profile& profile() const { return profile_; }

    /// Tolerance used when comparing sums against the cap.
    static constexpr double tolerance = 1e-9;

private:
    /// Re-copies profile values of [start, end) into the tree leaves and
    /// recomputes the affected internal extrema (grows the trees first
    /// when `end` passes the current leaf capacity).  No-op while the
    /// trees do not exist yet -- they are built lazily by the first
    /// next_fit() call, so trackers that only ever use the linear fits()
    /// path (the skip_probe ablation, exact's branch-and-bound churn)
    /// pay nothing for them.
    void sync_tree(int start, int end) const;

    /// Builds the trees over the whole current profile if absent.
    void ensure_tree() const;

    /// Rightmost cycle c in [lo, hi) with value(c) + power > cap + tol,
    /// or -1 when the whole range fits.  Rightmost maximises the skip.
    int last_violation(int lo, int hi, double power) const;

    /// Leftmost cycle >= from with value + power <= cap + tol (cycles at
    /// or past the leaf capacity count as free).
    int first_clean(int from, double power) const;

    double cap_;
    power_profile profile_;
    /// Lazily built headroom trees (mutable: next_fit is logically
    /// const; the trees are a cache of profile_).
    mutable std::vector<double> tree_max_; ///< 2*leaves_; [leaves_+c] = cycle c
    mutable std::vector<double> tree_min_; ///< same layout, min instead of max
    mutable int leaves_ = 0; ///< leaf capacity (power of two), 0 = absent
};

/// Convenience: an infinite cap.
inline constexpr double unbounded_power = std::numeric_limits<double>::infinity();

} // namespace phls
