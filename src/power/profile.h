// Per-cycle power profiles.
//
// The paper's power constraint is on *power per clock cycle*: the sum of
// the per-cycle power of all functional units executing in that cycle
// (Table 1's P column).  A power_profile is that sum, cycle by cycle.
#pragma once

#include <string>
#include <vector>

namespace phls {

/// Power drawn in each clock cycle of a schedule.
class power_profile {
public:
    power_profile() = default;
    explicit power_profile(int cycles) : cycles_(static_cast<std::size_t>(cycles), 0.0) {}
    explicit power_profile(std::vector<double> values) : cycles_(std::move(values)) {}

    int cycle_count() const { return static_cast<int>(cycles_.size()); }

    double at(int cycle) const;

    /// Adds `power` over cycles [start, start+duration); grows as needed.
    void deposit(int start, int duration, double power);

    /// Removes a previous deposit (no shrinking; values may reach 0).
    void withdraw(int start, int duration, double power);

    /// Overwrites [start, start+count) with previously captured values --
    /// the bit-exact unwind of deposits over that interval (withdraw()
    /// re-subtracts and can drift in the last ulp).  The interval must
    /// lie within the current horizon.
    void overwrite(int start, const double* values, int count);

    double peak() const;
    double average() const;
    /// Sum over cycles (energy in power-units * cycles).
    double energy() const;

    const std::vector<double>& values() const { return cycles_; }

    /// Multi-line ASCII bar chart (one row per cycle), used by the
    /// Figure 1 bench; `cap` draws the constraint line when finite.
    std::string ascii_chart(double cap, int width = 60) const;

private:
    std::vector<double> cycles_;
};

} // namespace phls
