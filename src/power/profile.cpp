#include "power/profile.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "support/errors.h"
#include "support/strings.h"

namespace phls {

double power_profile::at(int cycle) const
{
    check(cycle >= 0, "power_profile::at: negative cycle");
    if (cycle >= cycle_count()) return 0.0;
    return cycles_[static_cast<std::size_t>(cycle)];
}

void power_profile::deposit(int start, int duration, double power)
{
    check(start >= 0 && duration >= 0, "power_profile::deposit: bad interval");
    if (start + duration > cycle_count())
        cycles_.resize(static_cast<std::size_t>(start + duration), 0.0);
    for (int c = start; c < start + duration; ++c)
        cycles_[static_cast<std::size_t>(c)] += power;
}

void power_profile::withdraw(int start, int duration, double power)
{
    check(start >= 0 && start + duration <= cycle_count(),
          "power_profile::withdraw: interval was never deposited");
    for (int c = start; c < start + duration; ++c) {
        cycles_[static_cast<std::size_t>(c)] -= power;
        // Guard against floating-point drift producing tiny negatives.
        if (cycles_[static_cast<std::size_t>(c)] < 0.0 &&
            cycles_[static_cast<std::size_t>(c)] > -1e-9)
            cycles_[static_cast<std::size_t>(c)] = 0.0;
        check(cycles_[static_cast<std::size_t>(c)] >= 0.0,
              "power_profile::withdraw exceeds deposits");
    }
}

void power_profile::overwrite(int start, const double* values, int count)
{
    check(start >= 0 && count >= 0 && start + count <= cycle_count(),
          "power_profile::overwrite: interval outside the horizon");
    for (int i = 0; i < count; ++i) {
        check(values[i] >= 0.0, "power_profile::overwrite: negative value");
        cycles_[static_cast<std::size_t>(start + i)] = values[i];
    }
}

double power_profile::peak() const
{
    double p = 0.0;
    for (double v : cycles_) p = std::max(p, v);
    return p;
}

double power_profile::average() const
{
    if (cycles_.empty()) return 0.0;
    return energy() / static_cast<double>(cycles_.size());
}

double power_profile::energy() const
{
    return std::accumulate(cycles_.begin(), cycles_.end(), 0.0);
}

std::string power_profile::ascii_chart(double cap, int width) const
{
    const double scale_max = std::max(peak(), std::isfinite(cap) ? cap : 0.0);
    std::ostringstream os;
    for (int c = 0; c < cycle_count(); ++c) {
        const double v = cycles_[static_cast<std::size_t>(c)];
        const int bar =
            scale_max > 0.0 ? static_cast<int>(std::lround(v / scale_max * width)) : 0;
        const int cap_col = std::isfinite(cap) && scale_max > 0.0
                                ? static_cast<int>(std::lround(cap / scale_max * width))
                                : -1;
        os << strf("%4d |", c);
        for (int i = 0; i < width + 2; ++i) {
            if (i == cap_col && i >= bar)
                os << '!';
            else
                os << (i < bar ? '#' : ' ');
        }
        os << strf("| %6.2f\n", v);
    }
    return os.str();
}

} // namespace phls
