// Multi-task workloads: many CDFGs sharing one device, one per-cycle
// power envelope and one battery.
//
// The paper synthesises a single CDFG under (T, Pmax) and scores the
// battery lifetime of that one design; a real battery-powered device
// runs *several* kernels with deadlines on shared hardware.  A
// task::task_set captures that system-level workload: each task is a
// CDFG + module library + release/deadline/iteration contract plus an
// optional per-task flow configuration (which strategies synthesise its
// candidate implementations and over which (T, Pmax) axis).  The
// task::schedule engine (engine.h) packs every task's iterations into
// the shared envelope and scores the *composed* device profile on the
// battery models.
//
// Task sets live as data files in the cdfg/textio line-oriented style:
//
//   taskset radio
//   envelope 9.0
//   battery beta 0.1 cycle 0.5 idle 4
//   task rx  hal    deadline 60
//   task dsp cosine deadline 200 release 10 iterations 2 caps 8
//   task ctl hal    deadline 90  latency 10..17..3 synth greedy sched pasap
//
// Lines starting with '#' and blank lines are ignored.  Graphs are
// named benchmarks or `.cdfg` file paths; libraries default to the
// paper's Table 1 (`library <file.lib>` on a task line overrides).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "cdfg/graph.h"
#include "flow/flow.h"
#include "library/library.h"

namespace phls::task {

/// One task of a multi-task workload: a CDFG with a timing contract and
/// the configuration of its per-task candidate synthesis.
struct task_spec {
    std::string name; ///< unique within the set (one token, no spaces)
    graph g;          ///< the kernel this task executes
    module_library lib; ///< functional-unit library (default: Table 1)

    int release = 0;    ///< earliest start cycle (>= 0)
    int deadline = 0;   ///< all iterations finished by this cycle (> release)
    int iterations = 1; ///< graph executions per activation; preemption is
                        ///< allowed *between* iterations, never inside one

    /// Explicit per-task latency axis of the candidate (T, Pmax) space;
    /// empty = derived (fastest critical path up to the per-iteration
    /// deadline budget, at most four values).
    std::vector<int> latencies;
    int caps = 6; ///< power-cap axis size (a per-task Figure-2 grid)

    std::string synthesizer = "greedy"; ///< flow synthesis strategy
    std::string scheduler = "pasap";    ///< flow scheduler strategy
    synthesis_options options;          ///< heuristic knobs for the flow
};

/// A complete workload: the tasks, the shared per-cycle power envelope
/// and the battery the composed profile is scored on.
struct task_set {
    std::string name;
    /// Shared per-cycle power cap across every concurrently executing
    /// task (the device's power envelope); infinity = unconstrained.
    double envelope = unbounded_power;
    /// Battery parameters of the composed profile (same fields the flow
    /// lifetime stage uses; alpha <= 0 derives the capacity from the
    /// non-preemptive baseline schedule's energy so policies stay
    /// comparable on one battery).
    lifetime_spec battery;
    std::vector<task_spec> tasks;
};

/// Structural validation shared by the parser and programmatic callers:
/// non-empty set, unique single-token task names, deadline > release
/// >= 0, iterations >= 1, caps >= 1, positive explicit latencies,
/// envelope > 0, sane battery parameters, and every task's library
/// covering its graph.  @throws phls::error naming the offending task.
void check_task_set(const task_set& set);

/// Parses the text format; resolves graph names through the built-in
/// benchmarks or (for `.cdfg` paths) from disk, and `library` values
/// from disk.  @throws phls::parse_error with a line number on bad
/// input, phls::error on failed validation.
task_set parse_task_set(std::istream& is);

/// Parses from a string (convenience for tests).
task_set parse_task_set_string(const std::string& text);

/// Serialises in the format accepted by parse_task_set.  Graphs are
/// written by name, so every task graph must be a built-in benchmark
/// (file-loaded graphs have no stable path to emit); libraries must be
/// the default Table 1.  @throws phls::error otherwise.
std::string write_task_set_string(const task_set& set);

} // namespace phls::task
