#include "task/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>

#include "battery/battery.h"
#include "battery/lifetime.h"
#include "power/tracker.h"
#include "support/errors.h"

namespace phls::task {

namespace {

/// One task's pick for a portfolio candidate: the implementation the
/// policy runs it on and the exact per-cycle profile of one iteration.
struct chosen {
    const task_impl* impl = nullptr;
    power_profile prof;
};

/// Deposits one iteration's exact per-cycle profile at `start`.  The
/// caller probed `impl.peak` over the interval first, so every per-cycle
/// value (<= peak) fits; the tracker's ledger stays the exact composed
/// device profile, which is what the battery model scores.
void deposit_iteration(power_tracker& tr, int start, const power_profile& prof,
                       int lat)
{
    const std::vector<double>& v = prof.values();
    for (int c = 0; c < lat; ++c) {
        const double p =
            c < static_cast<int>(v.size()) ? v[static_cast<std::size_t>(c)] : 0.0;
        tr.reserve(start + c, 1, p);
    }
}

void finish_task(task_result& r, const task_spec& t)
{
    r.completion = r.runs.empty() ? t.release : r.runs.back().finish;
    r.slack = t.deadline - r.completion;
    r.met = r.completion <= t.deadline;
}

void finish_pack(task_schedule& s, const power_tracker& tr)
{
    s.met = 0;
    s.makespan = 0;
    for (const task_result& r : s.tasks) {
        if (r.met) ++s.met;
        s.makespan = std::max(s.makespan, r.completion);
    }
    s.profile = tr.profile();
    s.peak = s.profile.peak();
    s.energy = s.profile.energy();
}

/// Non-preemptive EDF: tasks in (deadline, release, index) order, all
/// iterations of a task as one contiguous block at the first start
/// where the block fits under the envelope at the implementation's peak.
task_schedule pack_edf(const task_set& set, const std::vector<chosen>& pick)
{
    task_schedule s;
    s.envelope = set.envelope;
    s.tasks.resize(set.tasks.size());
    std::vector<std::size_t> order(set.tasks.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        const task_spec& ta = set.tasks[a];
        const task_spec& tb = set.tasks[b];
        if (ta.deadline != tb.deadline) return ta.deadline < tb.deadline;
        if (ta.release != tb.release) return ta.release < tb.release;
        return a < b;
    });
    power_tracker tr(set.envelope);
    for (std::size_t idx : order) {
        const task_spec& t = set.tasks[idx];
        const chosen& ch = pick[idx];
        const int lat = ch.impl->latency;
        const int block = lat * t.iterations;
        const int start = tr.next_fit(t.release, block, ch.impl->peak);
        check(start >= 0, "task engine: viable implementation exceeds the envelope");
        task_result r;
        r.index = static_cast<int>(idx);
        r.name = t.name;
        r.release = t.release;
        r.deadline = t.deadline;
        r.iterations = t.iterations;
        r.impl = *ch.impl;
        for (int i = 0; i < t.iterations; ++i) {
            const int at = start + i * lat;
            deposit_iteration(tr, at, ch.prof, lat);
            r.runs.push_back({i, at, at + lat});
        }
        finish_task(r, t);
        s.tasks[idx] = std::move(r);
    }
    finish_pack(s, tr);
    return s;
}

/// Preemptive packing: iterations are placed one at a time, always for
/// the pending task with the earliest (deadline, next start, index), so
/// iterations of different tasks interleave wherever the envelope has
/// headroom.  With `insert_gaps`, a placed iteration whose peak reaches
/// `burst_threshold` is followed by recovery idle — but only while the
/// task's remaining iterations still fit before its deadline, so a gap
/// never turns a met deadline into a missed one.
task_schedule pack_preemptive(const task_set& set, const std::vector<chosen>& pick,
                              bool insert_gaps, double burst_threshold,
                              int recovery_gap)
{
    task_schedule s;
    s.envelope = set.envelope;
    s.tasks.resize(set.tasks.size());
    struct pending {
        int next = 0;     ///< iterations placed so far
        int earliest = 0; ///< next iteration may not start before this
    };
    std::vector<pending> state(set.tasks.size());
    for (std::size_t i = 0; i < set.tasks.size(); ++i) {
        state[i].earliest = set.tasks[i].release;
        task_result& r = s.tasks[i];
        r.index = static_cast<int>(i);
        r.name = set.tasks[i].name;
        r.release = set.tasks[i].release;
        r.deadline = set.tasks[i].deadline;
        r.iterations = set.tasks[i].iterations;
        r.impl = *pick[i].impl;
    }
    power_tracker tr(set.envelope);
    while (true) {
        std::size_t best = set.tasks.size();
        for (std::size_t i = 0; i < set.tasks.size(); ++i) {
            if (state[i].next >= set.tasks[i].iterations) continue;
            if (best == set.tasks.size()) {
                best = i;
                continue;
            }
            const task_spec& ti = set.tasks[i];
            const task_spec& tb = set.tasks[best];
            if (ti.deadline != tb.deadline) {
                if (ti.deadline < tb.deadline) best = i;
            } else if (state[i].earliest != state[best].earliest) {
                if (state[i].earliest < state[best].earliest) best = i;
            }
        }
        if (best == set.tasks.size()) break;
        const task_spec& t = set.tasks[best];
        const chosen& ch = pick[best];
        const int lat = ch.impl->latency;
        const int at = tr.next_fit(state[best].earliest, lat, ch.impl->peak);
        check(at >= 0, "task engine: viable implementation exceeds the envelope");
        deposit_iteration(tr, at, ch.prof, lat);
        s.tasks[best].runs.push_back({state[best].next, at, at + lat});
        ++state[best].next;
        state[best].earliest = at + lat;
        const int remaining = t.iterations - state[best].next;
        if (insert_gaps && remaining > 0 &&
            ch.impl->peak >= burst_threshold - power_tracker::tolerance) {
            const int gap = recovery_gap < 0 ? lat : recovery_gap;
            if (gap > 0 &&
                state[best].earliest + gap + remaining * lat <= t.deadline) {
                state[best].earliest += gap;
                ++s.preemption_gaps;
            }
        }
        if (remaining == 0) finish_task(s.tasks[best], t);
    }
    finish_pack(s, tr);
    return s;
}

/// Rakhmatov lifetime of the composed profile under the shared alpha.
void score(task_schedule& s, const task_set& set, double alpha)
{
    const load_profile load = to_load(s.profile, set.battery.voltage,
                                      set.battery.cycle_seconds,
                                      set.battery.idle_cycles);
    const auto model = make_rakhmatov_battery(alpha, set.battery.beta);
    s.lifetime_seconds = model->lifetime(load, set.battery.max_seconds).seconds;
    s.battery_alpha = alpha;
}

} // namespace

std::vector<std::string> policy_names() { return {"edf", "battery"}; }

policy policy_by_name(const std::string& name)
{
    if (name == "edf") return policy::edf;
    if (name == "battery") return policy::battery;
    throw error("unknown task policy '" + name + "' (try: edf, battery)");
}

const char* policy_name(policy p)
{
    return p == policy::edf ? "edf" : "battery";
}

const char* policy_description(policy p)
{
    switch (p) {
    case policy::edf:
        return "non-preemptive earliest-deadline-first baseline: fastest "
               "implementations, contiguous blocks";
    case policy::battery:
        return "preemptive battery-aware portfolio: keeps the EDF baseline "
               "unless a preemptive or recovery-gap schedule meets at least "
               "as many deadlines with at least the same lifetime";
    }
    return "";
}

task_schedule schedule(const task_set& set, policy p, serve::session_pool& pool,
                       const schedule_options& opts, const sink& sk)
{
    const auto t0 = std::chrono::steady_clock::now();
    check_task_set(set);
    check(opts.burst_fraction > 0.0 && opts.burst_fraction <= 1.0,
          "task engine: burst_fraction must be in (0, 1]");

    const std::vector<task_candidates> cands =
        explore_candidates(set, pool, opts.memo_limit, opts.threads);

    // Fixed-order sequential materialisation of the per-iteration
    // profiles (the exploration above already warmed each session's
    // memo, so these runs are cache serves).
    const std::size_t n = set.tasks.size();
    std::vector<chosen> fastest(n);
    std::vector<chosen> flattest(n);
    for (std::size_t i = 0; i < n; ++i) {
        const task_impl& fast = cands[i].viable.front();
        const task_impl& flat = flattest_impl(cands[i]);
        fastest[i].impl = &fast;
        fastest[i].prof =
            iteration_profile(set.tasks[i], fast, cands[i].slot->session);
        flattest[i].impl = &flat;
        flattest[i].prof =
            &flat == &fast
                ? fastest[i].prof
                : iteration_profile(set.tasks[i], flat, cands[i].slot->session);
    }

    task_schedule a = pack_edf(set, fastest);
    const double alpha = set.battery.alpha > 0.0
                             ? set.battery.alpha
                             : a.energy * set.battery.cycle_seconds * 100.0;
    score(a, set, alpha);

    task_schedule winner = std::move(a);
    if (p == policy::battery) {
        double threshold_base = set.envelope;
        if (!std::isfinite(threshold_base)) {
            threshold_base = 0.0;
            for (const chosen& ch : flattest)
                threshold_base = std::max(threshold_base, ch.impl->peak);
        }
        const double burst_threshold = opts.burst_fraction * threshold_base;
        const task_schedule candidates[] = {
            pack_preemptive(set, fastest, /*insert_gaps=*/false, burst_threshold,
                            opts.recovery_gap),
            pack_preemptive(set, flattest, /*insert_gaps=*/true, burst_threshold,
                            opts.recovery_gap),
        };
        for (const task_schedule& c : candidates) {
            task_schedule scored = c;
            score(scored, set, alpha);
            // Eligibility is against the current winner (initially the
            // EDF baseline, so transitively always >= it): a candidate
            // may never trade met deadlines for lifetime or vice versa.
            if (scored.met < winner.met ||
                scored.lifetime_seconds < winner.lifetime_seconds)
                continue;
            const bool strictly_better =
                scored.met > winner.met ||
                scored.lifetime_seconds > winner.lifetime_seconds ||
                scored.makespan < winner.makespan || scored.peak < winner.peak;
            if (strictly_better) winner = std::move(scored);
        }
    }

    winner.set_name = set.name;
    winner.policy = policy_name(p);
    winner.wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                  t0)
            .count();
    if (sk.on_task)
        for (const task_result& r : winner.tasks) sk.on_task(r);
    return winner;
}

task_schedule schedule(const task_set& set, policy p,
                       const schedule_options& opts, const sink& sk)
{
    serve::session_pool pool;
    return schedule(set, p, pool, opts, sk);
}

} // namespace phls::task
