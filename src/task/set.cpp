#include "task/set.h"

#include <cmath>
#include <fstream>
#include <istream>
#include <set>
#include <sstream>

#include "cdfg/benchmarks.h"
#include "cdfg/textio.h"
#include "support/errors.h"
#include "support/strings.h"

namespace phls::task {

namespace {

/// `T` or `LO..HI` or `LO..HI..STEP`, expanded to the inclusive value
/// list {LO, LO+STEP, ...} <= HI.
std::vector<int> parse_latency_axis(const std::string& spec)
{
    const std::size_t first = spec.find("..");
    if (first == std::string::npos)
        return {parse_int(spec, "latency")};
    const std::size_t second = spec.find("..", first + 2);
    const std::string lo_s = spec.substr(0, first);
    const std::string hi_s = second == std::string::npos
                                 ? spec.substr(first + 2)
                                 : spec.substr(first + 2, second - first - 2);
    const int lo = parse_int(lo_s, "latency range start");
    const int hi = parse_int(hi_s, "latency range end");
    const int step = second == std::string::npos
                         ? 1
                         : parse_int(spec.substr(second + 2), "latency range step");
    check(lo >= 1, "latency range start must be >= 1");
    check(hi >= lo, "latency range end must be >= its start");
    check(step >= 1, "latency range step must be >= 1");
    std::vector<int> values;
    for (int t = lo; t <= hi; t += step) values.push_back(t);
    return values;
}

graph load_task_graph(const std::string& ref)
{
    if (ends_with(ref, ".cdfg")) {
        std::ifstream is(ref);
        check(is.good(), "cannot open CDFG file '" + ref + "'");
        return parse_cdfg(is);
    }
    return benchmark_by_name(ref);
}

module_library load_task_library(const std::string& path)
{
    std::ifstream is(path);
    check(is.good(), "cannot open library file '" + path + "'");
    return parse_library(is);
}

task_spec parse_task_line(const std::vector<std::string>& tok)
{
    check(tok.size() >= 3, "expected: task <name> <graph> deadline <D> [...]");
    task_spec t;
    t.name = tok[1];
    t.g = load_task_graph(tok[2]);
    t.lib = table1_library();
    bool saw_deadline = false;
    for (std::size_t i = 3; i < tok.size(); i += 2) {
        check(i + 1 < tok.size(), "task attribute '" + tok[i] + "' needs a value");
        const std::string& key = tok[i];
        const std::string& value = tok[i + 1];
        if (key == "deadline") {
            t.deadline = parse_int(value, "deadline");
            saw_deadline = true;
        } else if (key == "release") {
            t.release = parse_int(value, "release");
        } else if (key == "iterations") {
            t.iterations = parse_int(value, "iterations");
        } else if (key == "latency") {
            t.latencies = parse_latency_axis(value);
        } else if (key == "caps") {
            t.caps = parse_int(value, "caps");
        } else if (key == "synth") {
            t.synthesizer = value;
        } else if (key == "sched") {
            t.scheduler = value;
        } else if (key == "library") {
            t.lib = load_task_library(value);
        } else {
            throw error("unknown task attribute '" + key + "'");
        }
    }
    check(saw_deadline, "task '" + t.name + "' has no deadline");
    return t;
}

void parse_battery_line(const std::vector<std::string>& tok, lifetime_spec& battery)
{
    for (std::size_t i = 1; i < tok.size(); i += 2) {
        check(i + 1 < tok.size(), "battery attribute '" + tok[i] + "' needs a value");
        const std::string& key = tok[i];
        const std::string& value = tok[i + 1];
        if (key == "beta") {
            battery.beta = parse_double(value, "battery beta");
        } else if (key == "alpha") {
            battery.alpha = parse_double(value, "battery alpha");
        } else if (key == "voltage") {
            battery.voltage = parse_double(value, "battery voltage");
        } else if (key == "cycle") {
            battery.cycle_seconds = parse_double(value, "battery cycle");
        } else if (key == "idle") {
            battery.idle_cycles = parse_int(value, "battery idle");
        } else {
            throw error("unknown battery attribute '" + key + "'");
        }
    }
}

bool is_finite_positive(double x) { return std::isfinite(x) && x > 0.0; }

} // namespace

void check_task_set(const task_set& set)
{
    check(!set.tasks.empty(), "task set '" + set.name + "' has no tasks");
    check(set.envelope > 0.0, "task set envelope must be positive");
    check(is_finite_positive(set.battery.beta), "battery beta must be positive");
    check(is_finite_positive(set.battery.voltage), "battery voltage must be positive");
    check(is_finite_positive(set.battery.cycle_seconds),
          "battery cycle seconds must be positive");
    check(set.battery.idle_cycles >= 0, "battery idle cycles must be >= 0");
    std::set<std::string> names;
    for (const task_spec& t : set.tasks) {
        const std::string where = "task '" + t.name + "': ";
        check(!t.name.empty() && split_ws(t.name).size() == 1 &&
                  trim(t.name).size() == t.name.size(),
              "task names must be single non-empty tokens");
        check(names.insert(t.name).second, where + "duplicate task name");
        check(t.release >= 0, where + "release must be >= 0");
        check(t.deadline > t.release, where + "deadline must exceed the release");
        check(t.iterations >= 1, where + "iterations must be >= 1");
        check(t.caps >= 1, where + "caps must be >= 1");
        for (int lat : t.latencies) check(lat >= 1, where + "latencies must be >= 1");
        try {
            t.lib.check_covers(t.g);
        } catch (const error& e) {
            throw error(where + e.what());
        }
    }
}

task_set parse_task_set(std::istream& is)
{
    task_set set;
    std::string line;
    int lineno = 0;
    bool saw_header = false;
    while (std::getline(is, line)) {
        ++lineno;
        if (is_blank_or_comment(line)) continue;
        const std::vector<std::string> tok = split_ws(line);
        try {
            if (tok[0] == "taskset") {
                check(tok.size() == 2, "expected: taskset <name>");
                set.name = tok[1];
                saw_header = true;
            } else if (tok[0] == "envelope") {
                check(tok.size() == 2, "expected: envelope <power>");
                set.envelope = parse_double(tok[1], "envelope");
            } else if (tok[0] == "battery") {
                parse_battery_line(tok, set.battery);
            } else if (tok[0] == "task") {
                set.tasks.push_back(parse_task_line(tok));
            } else {
                throw error("unknown directive '" + tok[0] + "'");
            }
        } catch (const parse_error&) {
            throw;
        } catch (const error& e) {
            throw parse_error(e.what(), lineno);
        }
    }
    check(saw_header, "missing 'taskset <name>' header");
    check_task_set(set);
    return set;
}

task_set parse_task_set_string(const std::string& text)
{
    std::istringstream is(text);
    return parse_task_set(is);
}

std::string write_task_set_string(const task_set& set)
{
    check_task_set(set);
    const std::string table1 = write_library_string(table1_library());
    std::ostringstream os;
    os << "taskset " << set.name << '\n';
    if (std::isfinite(set.envelope)) os << "envelope " << strf("%g", set.envelope) << '\n';
    os << strf("battery beta %g voltage %g cycle %g idle %d", set.battery.beta,
               set.battery.voltage, set.battery.cycle_seconds, set.battery.idle_cycles);
    if (set.battery.alpha > 0.0) os << strf(" alpha %g", set.battery.alpha);
    os << '\n';
    for (const task_spec& t : set.tasks) {
        bool known = false;
        for (const std::string& b : benchmark_names()) known = known || b == t.g.name();
        check(known, "task '" + t.name + "': only built-in benchmark graphs can be "
                     "written by name (graph '" + t.g.name() + "' is not one)");
        check(write_library_string(t.lib) == table1,
              "task '" + t.name + "': only the default Table 1 library can be written");
        os << "task " << t.name << ' ' << t.g.name() << " deadline " << t.deadline;
        if (t.release != 0) os << " release " << t.release;
        if (t.iterations != 1) os << " iterations " << t.iterations;
        if (!t.latencies.empty()) {
            os << " latency ";
            // Emit a LO..HI..STEP range when the values are an arithmetic
            // progression (they round-trip exactly); otherwise one task
            // line per explicit value cannot be expressed -- fall back to
            // the densest range notation that reproduces the list.
            bool arithmetic = true;
            const int step =
                t.latencies.size() > 1 ? t.latencies[1] - t.latencies[0] : 1;
            for (std::size_t i = 1; i < t.latencies.size(); ++i)
                arithmetic =
                    arithmetic && t.latencies[i] - t.latencies[i - 1] == step;
            check(arithmetic && step >= 1,
                  "task '" + t.name +
                      "': explicit latencies must form an increasing arithmetic "
                      "progression to be written as LO..HI..STEP");
            if (t.latencies.size() == 1)
                os << t.latencies.front();
            else
                os << t.latencies.front() << ".." << t.latencies.back() << ".." << step;
        }
        if (t.caps != 6) os << " caps " << t.caps;
        if (t.synthesizer != "greedy") os << " synth " << t.synthesizer;
        if (t.scheduler != "pasap") os << " sched " << t.scheduler;
        os << '\n';
    }
    return os.str();
}

} // namespace phls::task
