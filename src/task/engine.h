// The multi-task scheduling engine: packs a task_set's iterations into
// the shared power envelope and scores the composed profile's battery
// lifetime.
//
// Two policies:
//
//   * edf     — non-preemptive earliest-deadline-first baseline: tasks
//     in deadline order, each on its *fastest* viable implementation,
//     all iterations as one contiguous block at the first start where
//     the block's peak fits under the envelope (power_tracker::next_fit
//     leaps whole saturated stretches in O(log H)).
//   * battery — the battery-aware portfolio: the EDF baseline plus a
//     preemptive variant (iterations placed one by one, so they slot
//     into headroom the contiguous block cannot use) and a preemptive
//     *flattest-implementation* variant that deliberately inserts
//     recovery gaps after high-power bursts — the idle the Rakhmatov
//     diffusion model recovers during.  The engine keeps whichever
//     candidate wins on (deadlines met, then composed-profile lifetime),
//     never discarding the baseline, so `battery` is >= `edf` on both
//     axes *by construction* — the property bench_tasks gates.
//
// Determinism: per-task candidate synthesis fans out over the thread
// count, each task's sweep runs single-threaded, packing and scoring
// are sequential in fixed order — the returned schedule (including its
// to_string) is byte-identical for every thread count.  All three
// portfolio candidates are scored on one shared battery capacity
// (derived from the EDF baseline's profile when the set does not pin
// alpha), so lifetimes are comparable across policies.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "serve/server.h"
#include "task/schedule.h"
#include "task/set.h"

namespace phls::task {

/// Scheduling policy of task::schedule.
enum class policy {
    edf,     ///< non-preemptive earliest-deadline-first baseline
    battery, ///< preemptive battery-aware portfolio (>= edf by construction)
};

/// Registry-style name list ("edf", "battery"), in canonical order.
std::vector<std::string> policy_names();
/// Policy by name; @throws phls::error for unknown names.
policy policy_by_name(const std::string& name);
/// Short stable name of a policy.
const char* policy_name(policy p);
/// One-line human description (the CLI's --list-policies output).
const char* policy_description(policy p);

/// Engine knobs.
struct schedule_options {
    /// Worker threads for per-task candidate synthesis; 0 = hardware
    /// concurrency.  The schedule itself is thread-count independent.
    int threads = 0;
    /// Full-report LRU bound per pooled session (0 = unbounded).
    std::size_t memo_limit = 0;
    /// Recovery idle inserted after a high-power burst, in cycles;
    /// negative = one burst length (the placed iteration's latency).
    int recovery_gap = -1;
    /// A placed iteration counts as a burst when its peak is at least
    /// this fraction of the envelope (of the highest chosen peak when
    /// the envelope is unbounded).  Must be in (0, 1].
    double burst_fraction = 0.5;
};

/// Streaming delivery, like dse::sink: one call per task of the winning
/// schedule, in task-set order, before schedule() returns.  Calls are
/// serialised; a throwing callback propagates to the caller.
struct sink {
    std::function<void(const task_result&)> on_task;
};

/// Packs `set` under `p` and scores the composed profile.  Candidate
/// implementations are explored through `pool`, so repeated calls (and
/// duplicate tasks within one set) hit warm sessions.  @throws
/// task_error for infeasible sets (see candidates.h), phls::error on
/// malformed options.
task_schedule schedule(const task_set& set, policy p, serve::session_pool& pool,
                       const schedule_options& opts = {}, const sink& sk = {});

/// Convenience overload with a private single-use pool.
task_schedule schedule(const task_set& set, policy p,
                       const schedule_options& opts = {}, const sink& sk = {});

} // namespace phls::task
