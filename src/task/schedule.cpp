#include "task/schedule.h"

#include <cmath>

#include "support/strings.h"

namespace phls::task {

namespace {

/// Infinite caps print as "inf" (strf's %f would be locale-stable but
/// "inf" reads better in the byte-compared dumps).
std::string fmt_power(double p)
{
    return std::isfinite(p) ? strf("%.6f", p) : "inf";
}

} // namespace

std::string task_schedule::to_string() const
{
    // Canonical rendering of every *result* field; wall_ms is timing
    // noise and deliberately excluded so identical schedules serialise
    // identically regardless of machine load, thread count or caching.
    std::string out;
    out += "taskset: " + set_name + " policy " + policy + " envelope " +
           fmt_power(envelope) + '\n';
    out += strf("summary: tasks %zu met %d makespan %d gaps %d\n", tasks.size(),
                met, makespan, preemption_gaps);
    out += strf("profile: peak %.6f energy %.6f\n", peak, energy);
    out += strf("battery: lifetime %.6f alpha %.6f\n", lifetime_seconds,
                battery_alpha);
    for (const task_result& t : tasks) {
        out += strf("task %d %s: impl T=%d Pmax=%s latency %d peak %.6f "
                    "area %.4f\n",
                    t.index, t.name.c_str(), t.impl.point.latency,
                    fmt_power(t.impl.point.max_power).c_str(), t.impl.latency,
                    t.impl.peak, t.impl.area);
        out += strf("  window: release %d deadline %d iterations %d "
                    "completion %d slack %d %s\n",
                    t.release, t.deadline, t.iterations, t.completion, t.slack,
                    t.met ? "met" : "missed");
        out += "  runs:";
        for (const activation& a : t.runs)
            out += strf(" %d@[%d,%d)", a.iteration, a.start, a.finish);
        out += '\n';
    }
    return out;
}

} // namespace phls::task
