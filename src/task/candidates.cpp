#include "task/candidates.h"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>

#include "cdfg/analysis.h"
#include "power/tracker.h"
#include "support/parallel.h"
#include "support/strings.h"

namespace phls::task {

namespace {

flow task_flow(const task_spec& t)
{
    return flow::on(t.g)
        .with_library(t.lib)
        .synthesizer(t.synthesizer)
        .scheduler(t.scheduler)
        .options(t.options);
}

/// Critical path when every operation runs on its fastest module.
int fastest_critical_path(const task_spec& t)
{
    return critical_path_length(t.g, [&](node_id v) {
        const auto m = t.lib.fastest_for(t.g.kind(v), unbounded_power);
        check(m.has_value(), "task '" + t.name + "': library does not cover the graph");
        return t.lib.module(*m).latency;
    });
}

/// The lowest peak any schedule of `t` can reach: every operation draws
/// at least its cheapest module's power in the cycle it executes, so no
/// design peaks below the largest such per-kind minimum.
double peak_floor(const task_spec& t)
{
    double floor_power = 0.0;
    for (node_id v : t.g.nodes()) {
        const auto p = t.lib.min_power_for(t.g.kind(v));
        check(p.has_value(), "task '" + t.name + "': library does not cover the graph");
        floor_power = std::max(floor_power, *p);
    }
    return floor_power;
}

task_candidates explore_one(const task_spec& t, double envelope,
                            serve::session_pool& pool, std::size_t memo_limit)
{
    // An impossible envelope is diagnosed before any synthesis runs.
    const double floor_power = peak_floor(t);
    if (floor_power > envelope + power_tracker::tolerance)
        throw task_error(task_error_kind::envelope_exceeded, t.name,
                         strf("no design can peak below %g, above the shared "
                              "envelope %g",
                              floor_power, envelope));

    task_candidates c;
    const serve::job_request job = candidate_job(t, envelope);
    c.slot = pool.acquire(job, memo_limit);

    std::vector<task_impl> impls;
    {
        std::lock_guard<std::mutex> run(c.slot->run);
        dse::sink sk;
        sk.on_result = [&](std::size_t, const flow_report& r) {
            if (!r.st.ok()) return;
            impls.push_back({r.constraints, r.latency, r.peak, r.area});
        };
        // One worker inside each task's sweep: the parallelism of
        // explore_candidates is across tasks, and a single-threaded sweep
        // keeps the candidate list a pure function of the task alone.
        c.slot->session.explore(job.space, sk, /*threads=*/1);
    }

    if (impls.empty())
        throw task_error(task_error_kind::no_feasible_impl, t.name,
                         "no feasible implementation at any explored (T, Pmax) point");

    const int budget = t.deadline - t.release;
    bool any_under_envelope = false;
    int fastest_under_envelope = 0;
    for (const task_impl& impl : impls) {
        if (impl.peak > envelope + power_tracker::tolerance) continue;
        if (!any_under_envelope || impl.latency < fastest_under_envelope)
            fastest_under_envelope = impl.latency;
        any_under_envelope = true;
        if (impl.latency * t.iterations <= budget) c.viable.push_back(impl);
    }
    if (c.viable.empty()) {
        if (!any_under_envelope)
            throw task_error(
                task_error_kind::envelope_exceeded, t.name,
                strf("every feasible implementation peaks above the shared "
                     "envelope %g",
                     envelope));
        throw task_error(
            task_error_kind::deadline_unmeetable, t.name,
            strf("the fastest implementation under the envelope needs %d x %d "
                 "cycles but only %d remain before the deadline",
                 fastest_under_envelope, t.iterations, budget));
    }

    std::sort(c.viable.begin(), c.viable.end(),
              [](const task_impl& a, const task_impl& b) {
                  if (a.latency != b.latency) return a.latency < b.latency;
                  if (a.peak != b.peak) return a.peak < b.peak;
                  if (a.area != b.area) return a.area < b.area;
                  if (a.point.latency != b.point.latency)
                      return a.point.latency < b.point.latency;
                  return a.point.max_power < b.point.max_power;
              });
    c.viable.erase(std::unique(c.viable.begin(), c.viable.end(),
                               [](const task_impl& a, const task_impl& b) {
                                   return a.latency == b.latency &&
                                          a.peak == b.peak && a.area == b.area;
                               }),
                   c.viable.end());
    return c;
}

} // namespace

const char* task_error_kind_name(task_error_kind k)
{
    switch (k) {
    case task_error_kind::no_feasible_impl: return "no_feasible_impl";
    case task_error_kind::envelope_exceeded: return "envelope_exceeded";
    case task_error_kind::deadline_unmeetable: return "deadline_unmeetable";
    }
    return "unknown";
}

std::vector<int> candidate_latencies(const task_spec& t)
{
    std::vector<int> axis;
    if (!t.latencies.empty()) {
        axis = t.latencies;
        std::sort(axis.begin(), axis.end());
        axis.erase(std::unique(axis.begin(), axis.end()), axis.end());
        return axis;
    }
    const int lo = fastest_critical_path(t);
    const int hi = (t.deadline - t.release) / std::max(1, t.iterations);
    if (hi < lo)
        throw task_error(
            task_error_kind::deadline_unmeetable, t.name,
            strf("one iteration needs at least %d cycles (fastest critical "
                 "path) but the per-iteration deadline budget is %d",
                 lo, hi));
    const int span = hi - lo;
    const int count = std::min(4, span + 1);
    for (int k = 0; k < count; ++k)
        axis.push_back(lo + (count == 1 ? 0 : span * k / (count - 1)));
    axis.erase(std::unique(axis.begin(), axis.end()), axis.end());
    return axis;
}

std::vector<double> candidate_caps(const task_spec& t, double envelope)
{
    const bool bounded = envelope < unbounded_power;
    if (t.caps == 1) return {bounded ? envelope : unbounded_power};
    const std::vector<int> latencies = candidate_latencies(t);
    std::vector<double> grid;
    try {
        grid = task_flow(t).latency(latencies.back()).power_grid(t.caps);
    } catch (const task_error&) {
        throw;
    } catch (const error& e) {
        throw task_error(task_error_kind::no_feasible_impl, t.name,
                         std::string("power-grid probe failed: ") + e.what());
    }
    std::vector<double> axis;
    for (double cap : grid)
        if (!bounded || cap < envelope) axis.push_back(cap);
    if (bounded) axis.push_back(envelope);
    std::sort(axis.begin(), axis.end());
    axis.erase(std::unique(axis.begin(), axis.end()), axis.end());
    return axis;
}

serve::job_request candidate_job(const task_spec& t, double envelope)
{
    return serve::make_job(task_flow(t),
                           dse::cross(candidate_latencies(t),
                                      candidate_caps(t, envelope)));
}

const task_impl& flattest_impl(const task_candidates& c)
{
    check(!c.viable.empty(), "flattest_impl: no viable implementations");
    const task_impl* best = &c.viable.front();
    for (const task_impl& impl : c.viable) {
        if (impl.peak < best->peak ||
            (impl.peak == best->peak && impl.latency < best->latency) ||
            (impl.peak == best->peak && impl.latency == best->latency &&
             impl.area < best->area))
            best = &impl;
    }
    return *best;
}

std::vector<task_candidates> explore_candidates(const task_set& set,
                                                serve::session_pool& pool,
                                                std::size_t memo_limit,
                                                int threads)
{
    if (threads <= 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    std::vector<task_candidates> out(set.tasks.size());
    // parallel_for terminates on escaped worker exceptions, and an
    // infeasible task *throws* by design -- capture per slot, then
    // rethrow the lowest task index so the diagnosis is deterministic.
    std::vector<std::exception_ptr> errors(set.tasks.size());
    parallel_for(set.tasks.size(), threads, [&](std::size_t i) {
        try {
            out[i] = explore_one(set.tasks[i], set.envelope, pool, memo_limit);
        } catch (...) {
            errors[i] = std::current_exception();
        }
    });
    for (const std::exception_ptr& e : errors)
        if (e) std::rethrow_exception(e);
    return out;
}

power_profile iteration_profile(const task_spec& t, const task_impl& impl,
                                const dse::session& session)
{
    const flow_report r =
        task_flow(t).constraints(impl.point).reuse(session.cache()).run();
    check(r.st.ok() && r.has_design,
          "task '" + t.name +
              "': recomputing the chosen implementation failed: " +
              r.st.to_string());
    return r.dp.sched.profile(t.lib);
}

} // namespace phls::task
