// Per-task candidate implementations, served through the dse layer.
//
// Each task of a task_set is its own synthesis problem: the engine
// explores a small per-task (T, Pmax) space through `phls::flow` and
// keeps the feasible outcomes as candidate *implementations* the packer
// chooses among (the fastest one for deadline pressure, the flattest
// one for battery health).  Exploration goes through a
// serve::session_pool so every task's problem gets one warm
// dse::session keyed by serve's canonical job encoding — two tasks over
// the same (graph, library, strategy, options) share one session and
// the second sweep is served from the warm memo (see dse/session.h and
// docs/TASKS.md; this is the supported way to run heterogeneous
// problems, one session per problem key, rather than pointing one
// session at many graphs).
//
// Infeasible *task sets* are loud: a task whose space yields no usable
// implementation throws task_error carrying a machine-readable kind —
// nothing is silently dropped from the schedule.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dse/session.h"
#include "power/profile.h"
#include "serve/server.h"
#include "task/set.h"

namespace phls::task {

/// Why a task set cannot be scheduled at all.
enum class task_error_kind {
    /// The per-task space produced no feasible design at any (T, Pmax).
    no_feasible_impl,
    /// Every feasible design's peak power exceeds the shared envelope.
    envelope_exceeded,
    /// No feasible design finishes `iterations` runs by the deadline —
    /// not even the fastest one, before any packing.
    deadline_unmeetable,
};

/// Short stable name ("no_feasible_impl", ...).
const char* task_error_kind_name(task_error_kind k);

/// An infeasible task set, attributed to one task.  Thrown by the
/// candidate stage (and therefore by task::schedule) instead of
/// emitting a best-effort schedule that silently drops the task.
class task_error : public error {
public:
    task_error(task_error_kind kind, const std::string& task_name,
               const std::string& what)
        : error("task '" + task_name + "': " + what + " [" +
                task_error_kind_name(kind) + "]"),
          kind_(kind), task_(task_name)
    {
    }

    task_error_kind kind() const { return kind_; }
    const std::string& task() const { return task_; }

private:
    task_error_kind kind_;
    std::string task_;
};

/// One feasible implementation of a task: the explored constraint point
/// and the achieved metrics of its design.
struct task_impl {
    synthesis_constraints point{}; ///< the (T, Pmax) the flow evaluated
    int latency = 0;               ///< achieved latency of one iteration
    double peak = 0.0;             ///< achieved peak per-cycle power
    double area = 0.0;             ///< design area
};

/// The latency axis of a task's candidate space: the explicit
/// task_spec::latencies when given, otherwise up to four evenly spaced
/// values from the fastest critical path to the per-iteration deadline
/// budget (deadline - release) / iterations.  @throws task_error
/// (deadline_unmeetable) when the budget is below the critical path.
std::vector<int> candidate_latencies(const task_spec& t);

/// The power-cap axis: flow::power_grid over the slowest latency,
/// clipped to the caps at or below the shared envelope (with the
/// envelope itself appended when finite — the cap the packer actually
/// enforces).  caps == 1 skips the probe and uses the envelope alone.
/// @throws task_error (no_feasible_impl) when the probe run fails.
std::vector<double> candidate_caps(const task_spec& t, double envelope);

/// The serve-layer job describing this task's exploration — the
/// session_pool keys sessions by this job's canonical encoding (minus
/// space/threads/cache path), so identical tasks share one session.
/// @throws task_error like the two axis helpers.
serve::job_request candidate_job(const task_spec& t, double envelope);

/// One task's usable implementations plus the pooled session that
/// computed them (kept so the packer can materialise a chosen
/// implementation's datapath from the warm cache).
struct task_candidates {
    /// Deduplicated viable implementations — peak within the envelope
    /// and fast enough to meet the deadline in isolation — sorted by
    /// (latency, peak, area, point): front() is the fastest.
    std::vector<task_impl> viable;
    std::shared_ptr<serve::session_pool::slot> slot; ///< warm session
};

/// The flattest viable implementation: minimal peak, then latency,
/// then area.  @throws phls::error on an empty candidate list.
const task_impl& flattest_impl(const task_candidates& c);

/// Explores every task's candidate space through `pool` (parallel over
/// tasks on `threads` workers, each task's sweep single-threaded, so
/// the result is byte-identical for every thread count), filters and
/// sorts the viable implementations per task, and diagnoses empty ones.
/// @throws task_error naming the first infeasible task (lowest index).
std::vector<task_candidates> explore_candidates(const task_set& set,
                                                serve::session_pool& pool,
                                                std::size_t memo_limit,
                                                int threads);

/// Materialises the exact per-cycle power profile of one iteration of
/// `impl`'s design by re-running the flow at the chosen point against
/// the warm session cache (exploration keeps metrics only; the packer
/// needs the datapath's profile to compose the device profile).
power_profile iteration_profile(const task_spec& t, const task_impl& impl,
                                const dse::session& session);

} // namespace phls::task
