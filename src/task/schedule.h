// The result of packing a task_set: who runs when, on which candidate
// implementation, and what the composed device drains from the battery.
#pragma once

#include <string>
#include <vector>

#include "power/profile.h"
#include "task/candidates.h"

namespace phls::task {

/// One placed graph iteration: the task executes over [start, finish).
struct activation {
    int iteration = 0; ///< 0-based iteration number within the task
    int start = 0;     ///< first cycle of the iteration
    int finish = 0;    ///< one past the last cycle (start + impl latency)
};

/// One task's placement in the composed schedule.
struct task_result {
    int index = 0;       ///< position in task_set::tasks
    std::string name;    ///< task_spec::name
    int release = 0;     ///< contract echoed from the spec
    int deadline = 0;
    int iterations = 0;
    task_impl impl;      ///< the implementation the policy chose
    /// The placed iterations in execution order.  Gaps between
    /// consecutive runs are preemption points: other tasks (or inserted
    /// recovery idle) occupy the cycles in between.
    std::vector<activation> runs;
    int completion = 0; ///< finish of the last iteration
    int slack = 0;      ///< deadline - completion (negative when missed)
    bool met = false;   ///< completion <= deadline
};

/// A complete schedule of a task_set plus the battery economics of its
/// merged device power profile.
struct task_schedule {
    std::string set_name;
    std::string policy;     ///< policy the engine ran ("edf", "battery")
    double envelope = 0.0;  ///< shared per-cycle cap enforced
    std::vector<task_result> tasks; ///< task-index order, one per spec
    int met = 0;      ///< tasks whose deadline was met
    int makespan = 0; ///< one past the last busy cycle
    /// The merged per-cycle device profile: the exact sum of every
    /// placed iteration's synthesised profile (what the battery sees).
    power_profile profile;
    double peak = 0.0;   ///< profile.peak()
    double energy = 0.0; ///< profile.energy()
    double lifetime_seconds = 0.0; ///< Rakhmatov lifetime of the profile
    double battery_alpha = 0.0;    ///< capacity the model used
    int preemption_gaps = 0; ///< recovery gaps the policy inserted
    double wall_ms = 0.0; ///< wall-clock time (excluded from to_string)

    /// Canonical rendering of every result field except wall_ms — the
    /// determinism gates byte-compare this across thread counts.
    std::string to_string() const;
};

} // namespace phls::task
