// Client side of the distributed exploration service.
//
// A serve::client speaks the wire protocol to a running `phls serve`
// (or any serve_connection() endpoint) and exposes the same delivery
// shape as a local dse::session: per-point reports and Pareto front
// deltas stream into a dse::sink while the remote sweep runs, and the
// final summary arrives as the done frame.  Remote reports are
// metric-only (status + achieved metrics, no datapath) — exactly what a
// warm local session serves, so sweep tables, fronts and exports built
// from them are byte-identical to local ones.
//
//   serve::client c(serve::connect_unix("/tmp/phls.sock"));
//   const serve::done_frame done =
//       c.explore(serve::make_job(prototype, space), {.on_result = ...});
//   c.bye();
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "dse/session.h"
#include "serve/wire.h"

namespace phls::serve {

/// Connects to a unix-domain serve socket.  @throws wire_error on
/// failure (no server, refused, path too long).
channel connect_unix(const std::string& path);

/// Connects to a TCP serve port.  @throws wire_error on failure.
channel connect_tcp(const std::string& host, int port);

/// One protocol conversation: handshakes on construction, then runs any
/// number of jobs.  Not thread-safe (one conversation, one thread).
class client {
public:
    /// Takes the channel and performs the version handshake.
    /// @throws wire_error on a non-hello answer or a version mismatch.
    explicit client(channel ch);

    /// Submits `job` and streams the results into `sk` as they arrive:
    /// on_result gets each evaluated point as a metric-only flow_report,
    /// on_front each front_delta.  Returns the done summary (whose front
    /// equals the deltas replayed in order).  @throws phls::error with
    /// the server's message when the job is rejected; wire_error when
    /// the connection breaks mid-job.
    done_frame explore(const job_request& job, const dse::sink& sk = {});

    /// Ends the conversation politely and closes the channel.
    void bye();

private:
    channel ch_;
};

/// Reconnect policy of a resilient_client.
struct reconnect_options {
    /// Reconnect attempts per explore() after a transport failure
    /// (wire_error) — dial failures and mid-job drops alike.  0 keeps
    /// the plain client's fail-fast behaviour.
    int max_retries = 0;
    /// Delay before the first reconnect, doubled per attempt.
    int backoff_ms = 100;
    /// Ceiling of the doubling backoff.
    int backoff_cap_ms = 2000;
};

/// A client that survives transport failures: on wire_error (server
/// restarted, connection dropped mid-stream, dial refused) it redials
/// via its connector with capped exponential backoff and resubmits the
/// job, up to max_retries times per explore().
///
/// Delivery stays byte-identical to a fault-free run: reports are
/// deduplicated by space index across attempts (a restarted job re-
/// streams points the first connection already delivered — the warm
/// server serves them from its memo), and front deltas are synthesised
/// from a local fold of the deduplicated reports, which reproduces the
/// server's own fold exactly.  Job rejections (phls::error) are not
/// retried — a resubmission would be rejected identically.
class resilient_client {
public:
    /// Dials one fresh connection; called on first use and per
    /// reconnect.  @throws wire_error when the peer is unreachable.
    using connector = std::function<channel()>;

    resilient_client(connector dial, const reconnect_options& opts = {});

    /// client::explore with reconnect-and-resubmit on wire_error.
    /// @throws phls::error on rejection; wire_error once the retry
    /// budget is spent.
    done_frame explore(const job_request& job, const dse::sink& sk = {});

    /// Ends the conversation politely (no-op when disconnected).
    void bye();

    /// Reconnections performed so far (observability for tests/tools).
    std::size_t reconnects() const { return reconnects_; }

private:
    void ensure_connected();

    connector dial_;
    reconnect_options opts_;
    channel ch_{-1, -1};
    bool connected_ = false;
    std::size_t reconnects_ = 0;
};

} // namespace phls::serve
