// Client side of the distributed exploration service.
//
// A serve::client speaks the wire protocol to a running `phls serve`
// (or any serve_connection() endpoint) and exposes the same delivery
// shape as a local dse::session: per-point reports and Pareto front
// deltas stream into a dse::sink while the remote sweep runs, and the
// final summary arrives as the done frame.  Remote reports are
// metric-only (status + achieved metrics, no datapath) — exactly what a
// warm local session serves, so sweep tables, fronts and exports built
// from them are byte-identical to local ones.
//
//   serve::client c(serve::connect_unix("/tmp/phls.sock"));
//   const serve::done_frame done =
//       c.explore(serve::make_job(prototype, space), {.on_result = ...});
//   c.bye();
#pragma once

#include <string>

#include "dse/session.h"
#include "serve/wire.h"

namespace phls::serve {

/// Connects to a unix-domain serve socket.  @throws wire_error on
/// failure (no server, refused, path too long).
channel connect_unix(const std::string& path);

/// Connects to a TCP serve port.  @throws wire_error on failure.
channel connect_tcp(const std::string& host, int port);

/// One protocol conversation: handshakes on construction, then runs any
/// number of jobs.  Not thread-safe (one conversation, one thread).
class client {
public:
    /// Takes the channel and performs the version handshake.
    /// @throws wire_error on a non-hello answer or a version mismatch.
    explicit client(channel ch);

    /// Submits `job` and streams the results into `sk` as they arrive:
    /// on_result gets each evaluated point as a metric-only flow_report,
    /// on_front each front_delta.  Returns the done summary (whose front
    /// equals the deltas replayed in order).  @throws phls::error with
    /// the server's message when the job is rejected; wire_error when
    /// the connection breaks mid-job.
    done_frame explore(const job_request& job, const dse::sink& sk = {});

    /// Ends the conversation politely and closes the channel.
    void bye();

private:
    channel ch_;
};

} // namespace phls::serve
