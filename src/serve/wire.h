// Versioned binary wire format for the distributed exploration service.
//
// Everything the serve layer ships between processes — job requests
// (graph + library + flow configuration + a dse::space), streamed
// per-point reports, Pareto front_deltas and end-of-job summaries — is
// carried in self-delimiting *frames*:
//
//   [u32 magic "PHLS"] [u8 type] [u32 payload length] [payload bytes]
//   [u64 FNV-1a checksum of the payload]
//
// All integers are fixed-width little-endian (the format is
// ABI-independent, unlike the in-memory memo keys); doubles are encoded
// as the canonical memo_key bit pattern (key_double_bits: -0.0 and NaN
// normalised, ±inf distinct), so a point round-tripped over the wire
// produces the exact fingerprint the server's cache is keyed by.  A
// connection opens with a `hello` frame carrying the protocol version in
// each direction; peers speaking a different version are rejected before
// any job bytes are interpreted.  Every decoder is bounds-checked and
// throws wire_error instead of reading garbage, so a malformed or
// truncated frame is rejected cleanly — no crash, no partial state.
//
// The frame conversation (client side):
//
//   hello ->            <- hello
//   job ->              <- report*      (one per evaluated point)
//                       <- front*       (one per Pareto-front change)
//                       <- done         (summary + final front + stats)
//   job -> ... (more jobs on the same connection)
//   bye ->  (or just close)
//
// A server that cannot run a job answers `reject` (the connection stays
// usable); a protocol violation closes the connection.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dse/space.h"
#include "flow/explore_cache.h"
#include "flow/flow.h"
#include "flow/pareto_stream.h"
#include "support/errors.h"

namespace phls::serve {

/// Thrown on any malformed, truncated, mistyped or checksum-failing
/// wire traffic (and on transport failures: closed sockets, timeouts).
class wire_error : public error {
public:
    using error::error;
};

/// Protocol version exchanged in the hello handshake.  Bumped on any
/// incompatible change to the framing or a payload layout.
constexpr std::uint32_t wire_protocol_version = 1;

/// The frame kinds of the protocol.
enum class frame_type : std::uint8_t {
    hello = 1,  ///< version handshake (first frame in each direction)
    job = 2,    ///< client -> server: one exploration job
    report = 3, ///< server -> client: one evaluated point's metrics
    front = 4,  ///< server -> client: one Pareto front_delta
    done = 5,   ///< server -> client: job summary + final front + stats
    reject = 6, ///< server -> client: job refused (connection survives)
    bye = 7,    ///< client -> server: polite end of conversation
};

/// Short stable name of a frame type ("hello", "job", ...).
const char* frame_type_name(frame_type t);

// ------------------------------------------------------------- encoding

/// Fixed-width little-endian payload builder.
class wire_writer {
public:
    void u8(std::uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    /// Canonical memo_key bit pattern (normalised -0.0 / NaN).
    void f64(double v);
    /// u32 length prefix + raw bytes.
    void str(const std::string& s);

    /// The bytes written so far.
    const std::string& bytes() const { return bytes_; }
    /// Moves the bytes out (the writer is empty afterwards).
    std::string take() { return std::move(bytes_); }

private:
    std::string bytes_;
};

/// Bounds-checked little-endian payload decoder; every read past the
/// end throws wire_error instead of returning garbage.
class wire_reader {
public:
    explicit wire_reader(const std::string& bytes) : bytes_(bytes) {}
    /// The reader only borrows the bytes; a temporary would dangle.
    explicit wire_reader(std::string&&) = delete;

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    double f64();
    std::string str();

    /// Bytes not yet consumed.
    std::size_t remaining() const { return bytes_.size() - pos_; }
    /// Throws wire_error unless the payload was consumed exactly.
    void expect_end() const;

private:
    const std::string& bytes_;
    std::size_t pos_ = 0;
};

// -------------------------------------------------------------- framing

/// Serialises one complete frame (header + payload + checksum).
std::string encode_frame(frame_type t, const std::string& payload);

/// A framed, blocking byte channel over a pair of file descriptors —
/// a socket (read_fd == write_fd), a pipe pair, or stdio.  Move-only;
/// owns and closes its descriptors.
class channel {
public:
    /// Wraps existing descriptors.  `read_fd` and `write_fd` may be the
    /// same (sockets); both are closed by the destructor exactly once.
    channel(int read_fd, int write_fd);
    channel(channel&& other) noexcept;
    channel& operator=(channel&& other) noexcept;
    channel(const channel&) = delete;
    channel& operator=(const channel&) = delete;
    ~channel();

    /// One received frame.
    struct frame {
        frame_type type{};
        std::string payload;
    };

    /// Sends one frame; throws wire_error when the peer is gone or a
    /// socket send timeout (SO_SNDTIMEO) expires.  Socket sends use
    /// MSG_NOSIGNAL, so a vanished peer surfaces as wire_error rather
    /// than a process-killing SIGPIPE (pipe transports still need the
    /// caller to ignore SIGPIPE).
    void send(frame_type t, const std::string& payload);
    /// Ships raw bytes with no framing — exists so tests and fuzzers can
    /// inject malformed traffic through the same transport.
    void send_raw(const std::string& bytes);

    /// Receives the next frame.  Returns nullopt on a clean EOF at a
    /// frame boundary; throws wire_error on garbage (bad magic, bad
    /// checksum, oversized length, mid-frame EOF) and on read timeouts
    /// (a socket with SO_RCVTIMEO set).
    std::optional<frame> recv();

    /// Closes both descriptors now (idempotent).
    void close();
    /// True while the descriptors are open.
    bool open() const { return read_fd_ >= 0; }

private:
    int read_fd_ = -1;
    int write_fd_ = -1;
    /// Whether write_fd_ accepts ::send(MSG_NOSIGNAL): -1 until the
    /// first send probes it, then 1 (socket) or 0 (pipe, use ::write).
    int send_is_socket_ = -1;
};

/// Sends the version handshake on a fresh channel.
void send_hello(channel& ch);
/// Receives and validates the peer's handshake; throws wire_error on a
/// non-hello frame, a version mismatch, or EOF.
std::uint32_t expect_hello(channel& ch);

// ------------------------------------------------------------- payloads

/// One exploration job: a complete, self-contained problem description.
/// The graph and library travel in their canonical text serialisations
/// (the same identity strings the explore_cache is keyed by), the flow
/// configuration field-by-field, and the point space either as its
/// lattice axes or as an explicit point list.
struct job_request {
    std::string graph_text;   ///< write_cdfg_string() of the design
    std::string library_text; ///< write_library_string() of the library
    std::string synthesizer = "greedy"; ///< synthesis strategy name
    std::string scheduler = "pasap";    ///< scheduler strategy name
    synthesis_options options;          ///< heuristic knobs
    exact_options exact;                ///< exact-strategy budget
    bool want_netlist = false;          ///< run the RTL stage
    bool want_lifetime = false;         ///< run the battery stage
    lifetime_spec lifetime;             ///< battery stage parameters
    dse::space space = dse::list({});   ///< the points to evaluate
    /// Worker threads the evaluation may use; 0 lets the server choose.
    std::int32_t threads = 0;
    /// When non-empty, the evaluating side saves its session cache here
    /// after the job.  Honoured by stdio/pipe workers (the shard
    /// orchestrator's per-shard cache files); the socket server ignores
    /// it unless explicitly configured to allow client-chosen paths.
    std::string save_cache_path;
};

/// Builds a job from a configured flow prototype and a space — the
/// serialisation of what dse::session(prototype).explore(s) would run.
/// Non-lattice spaces are materialised into an explicit point list;
/// lattice (grid/cross/refine) spaces travel as their axes.
job_request make_job(const flow& prototype, const dse::space& s);

/// Reconstructs the flow prototype a job describes.  @throws phls::error
/// (or parse_error) when the graph/library text does not parse.
flow job_flow(const job_request& job);

std::string encode_hello(std::uint32_t version);
std::uint32_t decode_hello(const std::string& payload);

std::string encode_job(const job_request& job);
job_request decode_job(const std::string& payload);

/// One evaluated point: its space index and the metric projection of
/// its report (the same projection cache files persist — datapaths and
/// netlists never travel).
struct report_frame {
    std::uint64_t index = 0;
    metric_record metrics;
};

std::string encode_report(std::uint64_t index, const metric_record& metrics);
report_frame decode_report(const std::string& payload);

std::string encode_front(const front_delta& delta);
front_delta decode_front(const std::string& payload);

/// End-of-job summary: the evaluation counts, the final Pareto front
/// (replaying the streamed front frames must reconstruct exactly this),
/// and the serving cache's counter snapshot.
struct done_frame {
    std::uint64_t space_size = 0;
    std::uint64_t evaluated = 0;
    std::uint64_t feasible = 0;
    std::uint64_t metric_served = 0;
    explore_cache::counters counters{};
    std::vector<front_point> front;
};

std::string encode_done(const done_frame& done);
done_frame decode_done(const std::string& payload);

/// Why a job was refused (bad graph text, unknown strategy, ...).
struct reject_frame {
    std::string message;
};

std::string encode_reject(const std::string& message);
reject_frame decode_reject(const std::string& payload);

} // namespace phls::serve
