// The serving side of the distributed exploration service.
//
// Three nested layers, each usable on its own:
//
//   * session_pool — warm dse::sessions keyed by the full job
//     configuration (graph, library, strategies, options, stages).  Two
//     clients submitting the same problem share one session and
//     therefore one explore_cache: the second sweep is served from the
//     warm memo instead of resynthesising.
//   * serve_connection() — the per-connection protocol loop (handshake,
//     then jobs until bye/EOF) over any wire channel.  This is the whole
//     body of a fork/pipe worker (see shard.h) and of `phls serve
//     --stdio`; the socket server runs the same loop per client against
//     its shared pool.
//   * server — a long-lived listener (unix socket or loopback TCP) that
//     accepts concurrent clients, one thread each, against one shared
//     pool.  Failures degrade per client: a malformed frame or a
//     protocol violation closes that connection (after a best-effort
//     reject frame) and the server keeps serving everyone else.
//
// Job results stream while the sweep runs (report + front frames, then
// a done summary), so a client renders partial fronts exactly like a
// local dse::session sink would deliver them.
#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "dse/session.h"
#include "serve/wire.h"

namespace phls::serve {

/// Evaluation policy of one serving endpoint (socket server, fork
/// worker, stdio worker).
struct serve_limits {
    /// Worker threads per job when the job does not ask for a specific
    /// count (job_request::threads == 0); 0 = hardware concurrency.
    int threads = 1;
    /// Full-report LRU bound for each pooled session (0 = unbounded).
    std::size_t memo_limit = 0;
    /// Honour job_request::save_cache_path.  Off by default for socket
    /// servers (a remote client choosing server-side file paths is a
    /// policy decision); shard workers turn it on for their per-shard
    /// cache files.
    bool allow_cache_save = false;
};

/// Warm exploration sessions shared across jobs and connections.  A
/// session is keyed by everything that makes two jobs "the same problem"
/// — the canonical job encoding minus the space, thread count and cache
/// path — so duplicate submissions reuse one cache.  Thread-safe; each
/// slot serialises its explorations (dse::session runs one explore() at
/// a time).
class session_pool {
public:
    /// One pooled session plus its run lock.
    struct slot {
        slot(const flow& prototype, const dse::session_options& opts)
            : session(prototype, opts)
        {
        }
        std::mutex run; ///< hold while exploring on this session
        dse::session session;
    };

    /// The slot for `job`'s configuration, created on first sight (which
    /// parses the job's graph/library and builds the cache — errors from
    /// a malformed job throw here, before anything is cached).
    std::shared_ptr<slot> acquire(const job_request& job, std::size_t memo_limit);

    /// Sessions created so far (the warm-reuse observability hook: two
    /// identical jobs leave this at 1).
    std::size_t sessions_created() const;

private:
    mutable std::mutex mutex_;
    std::map<std::string, std::shared_ptr<slot>> slots_;
};

/// Per-connection protocol counters (shared across connections when the
/// caller serves several).
struct serve_stats {
    std::atomic<std::size_t> jobs{0};    ///< jobs run to a done frame
    std::atomic<std::size_t> rejects{0}; ///< jobs refused with a reject frame
};

/// Runs one decoded job on `pool`'s session for it: streams a report
/// frame per evaluated point and a front frame per Pareto change, then
/// the done summary.  A job that cannot start (unparsable graph/library,
/// unknown strategy) is answered with a reject frame instead; the
/// connection stays usable.  Returns true iff the job ran.
/// @throws wire_error when the peer disappears mid-stream.
bool run_job(channel& ch, const job_request& job, session_pool& pool,
             const serve_limits& limits, serve_stats* stats = nullptr);

/// The per-connection serve loop: version handshake, then frames until
/// a bye or a clean EOF.  @throws wire_error on malformed traffic or
/// protocol violations — the caller owns the policy (a fork worker dies
/// with the connection, the socket server closes one client).
void serve_connection(channel& ch, session_pool& pool, const serve_limits& limits,
                      serve_stats* stats = nullptr);

/// Listener configuration: exactly one of socket_path / port.
struct server_options {
    /// Unix-domain listener path (takes precedence when non-empty).
    std::string socket_path;
    /// Loopback TCP port; 0 picks an ephemeral port (see server::port()),
    /// negative means "no TCP listener".
    int port = -1;
    /// Per-client receive AND send timeout; a client idle (or not
    /// draining its result stream) longer than this is disconnected
    /// (0 = wait forever).
    int client_timeout_ms = 30000;
    /// Concurrent client connections served; one past the bound is
    /// answered hello + a loud "server at capacity" reject and closed,
    /// instead of growing an unbounded thread per connection.
    int max_clients = 64;
    serve_limits limits; ///< evaluation policy for every client
};

/// The long-lived exploration server: accepts concurrent clients on a
/// unix or loopback-TCP listener, serves each on its own thread against
/// one shared session_pool.  Construction binds and listens (throwing
/// phls::error on failure); run() blocks until stop(), start() runs the
/// same loop on a background thread.
class server {
public:
    explicit server(const server_options& opts);
    ~server(); ///< stop()s and joins everything

    server(const server&) = delete;
    server& operator=(const server&) = delete;

    /// The resolved TCP port (after an ephemeral bind); -1 for unix.
    int port() const { return port_; }
    /// The unix listener path ("" for TCP).
    const std::string& socket_path() const { return opts_.socket_path; }

    /// Serves until stop() is called (from another thread or a signal
    /// handler via request_stop()).
    void run();
    /// run() on a background thread; returns once accepting.
    void start();
    /// Async-signal-safe stop request; run() notices within its accept
    /// poll interval.
    void request_stop() { stop_.store(true); }
    /// Full shutdown: stops accepting, disconnects remaining clients,
    /// joins every thread.  Idempotent.
    void stop();

    /// Observability counters (safe to read while serving).
    struct stats_snapshot {
        std::size_t clients = 0;         ///< connections accepted
        std::size_t jobs = 0;            ///< jobs run to completion
        std::size_t rejects = 0;         ///< jobs refused
        std::size_t protocol_errors = 0; ///< connections dropped on bad traffic
        std::size_t overloaded = 0;      ///< connections rejected at capacity
        std::size_t sessions = 0;        ///< distinct problems seen (pool size)
    };
    stats_snapshot stats() const;

private:
    /// One serving thread plus its completion flag (set as the thread's
    /// last act, so a true flag means the thread is safe to join).
    struct client_slot {
        std::thread thread;
        std::shared_ptr<std::atomic<bool>> done;
    };

    void accept_loop();
    void client_loop(int fd, const std::shared_ptr<std::atomic<bool>>& done);
    /// Joins and drops every finished client thread (the accept loop
    /// calls this each round, so the thread list tracks *live* clients
    /// instead of growing for the server's lifetime).
    void reap_finished_clients();

    server_options opts_;
    int listen_fd_ = -1;
    int port_ = -1;
    std::atomic<bool> stop_{false};
    bool stopped_ = false;
    std::thread accept_thread_;
    std::mutex clients_mutex_;
    std::vector<client_slot> client_slots_;
    std::set<int> client_fds_; ///< open client sockets, for shutdown
    session_pool pool_;
    serve_stats serve_stats_;
    std::atomic<std::size_t> clients_{0};
    std::atomic<std::size_t> protocol_errors_{0};
    std::atomic<std::size_t> overloaded_{0};
};

} // namespace phls::serve
