#include "serve/manifest.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "serve/wire.h"
#include "support/faultpoints.h"
#include "support/memo_key.h"

namespace phls::serve {

namespace {

constexpr const char* manifest_magic = "phls-sweep-manifest";
constexpr long manifest_version = 1;

std::uint64_t fnv1a(const std::string& bytes)
{
    std::uint64_t h = 1469598103934665603ull;
    for (const unsigned char c : bytes) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace

std::uint64_t manifest_problem_hash(const flow& prototype, const dse::space& s)
{
    // The canonical encoding of the exact job a resume must replay: the
    // problem configuration AND the materialised space — the latency and
    // power caps live in the space's points, not in the prototype, so a
    // hash of the prototype alone could not tell two sweeps apart.
    return fnv1a(encode_job(make_job(prototype, s)));
}

void save_manifest(const std::string& path, const sweep_manifest& m)
{
    std::string body;
    key_int(body, static_cast<long>(m.problem_hash));
    key_int(body, static_cast<long>(m.space_size));
    key_int(body, static_cast<long>(m.done_ranges.size()));
    for (const sweep_manifest::range& r : m.done_ranges) {
        key_int(body, static_cast<long>(r.begin));
        key_int(body, static_cast<long>(r.end));
    }
    key_int(body, static_cast<long>(m.cache_files.size()));
    for (const std::string& f : m.cache_files) key_str(body, f);

    std::string payload;
    key_str(payload, manifest_magic);
    key_int(payload, manifest_version);
    key_int(payload, static_cast<long>(body.size()));
    payload += body;
    const std::uint64_t sum = fnv1a(body);
    char sum_bytes[sizeof sum];
    std::memcpy(sum_bytes, &sum, sizeof sum);
    payload.append(sum_bytes, sizeof sum);

    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            throw cache_file_error(cache_file_error::failure::io, path,
                                   "cannot write temporary manifest '" + tmp + "'");
        // Fault site: a crash halfway through the temporary file.  The
        // rename never happens, so `path` keeps its previous (complete)
        // manifest — this is what makes checkpointing atomic.
        if (fault_fire("manifest.save.tear")) {
            os.write(payload.data(), static_cast<std::streamsize>(payload.size() / 2));
            os.flush();
            throw cache_file_error(cache_file_error::failure::io, path,
                                   "fault injected: crash during manifest save");
        }
        os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
        os.flush();
        if (!os) {
            os.close();
            std::remove(tmp.c_str());
            throw cache_file_error(cache_file_error::failure::io, path,
                                   "failed writing temporary manifest '" + tmp + "'");
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw cache_file_error(cache_file_error::failure::io, path,
                               "cannot rename '" + tmp + "' into place");
    }
}

sweep_manifest load_manifest(const std::string& path)
{
    using failure = cache_file_error::failure;

    std::ifstream is(path, std::ios::binary);
    if (!is) throw cache_file_error(failure::missing, path, "cannot open manifest");
    std::ostringstream buffer;
    buffer << is.rdbuf();
    std::string content = buffer.str();

    // Fault site: in-memory corruption of what was read — exercises the
    // checksum rejection without touching the on-disk file.
    if (fault_fire("manifest.load.corrupt") && !content.empty())
        content[content.size() / 2] ^= 0x40;

    key_reader header(content);
    std::string magic;
    long version = 0;
    long body_size = 0;
    try {
        magic = header.read_str();
    } catch (const error&) {
        throw cache_file_error(failure::truncated, path,
                               "shorter than the manifest header");
    }
    if (magic != manifest_magic)
        throw cache_file_error(failure::corrupt, path, "not a phls sweep manifest");
    try {
        version = header.read_int();
        body_size = header.read_int();
    } catch (const error&) {
        throw cache_file_error(failure::truncated, path,
                               "shorter than the manifest header");
    }
    if (version != manifest_version)
        throw cache_file_error(failure::version_mismatch, path,
                               "format version " + std::to_string(version) +
                                   " (this build reads version " +
                                   std::to_string(manifest_version) + ")");
    if (body_size < 0)
        throw cache_file_error(failure::corrupt, path, "negative body length");
    const std::size_t body_bytes = static_cast<std::size_t>(body_size);
    if (header.remaining() < body_bytes + sizeof(std::uint64_t))
        throw cache_file_error(failure::truncated, path,
                               "body cut short (declared " +
                                   std::to_string(body_bytes) + " bytes, " +
                                   std::to_string(header.remaining()) + " remain)");
    if (header.remaining() > body_bytes + sizeof(std::uint64_t))
        throw cache_file_error(failure::corrupt, path, "trailing bytes after the body");

    const std::string body =
        content.substr(content.size() - header.remaining(), body_bytes);
    std::uint64_t stored_sum = 0;
    std::memcpy(&stored_sum, content.data() + content.size() - sizeof stored_sum,
                sizeof stored_sum);
    if (stored_sum != fnv1a(body))
        throw cache_file_error(failure::corrupt, path, "checksum mismatch");

    try {
        sweep_manifest m;
        key_reader r(body);
        m.problem_hash = static_cast<std::uint64_t>(r.read_int());
        m.space_size = static_cast<std::uint64_t>(r.read_int());
        const long n_ranges = r.read_int();
        check(n_ranges >= 0, "negative range count");
        m.done_ranges.reserve(static_cast<std::size_t>(n_ranges));
        for (long i = 0; i < n_ranges; ++i) {
            sweep_manifest::range rg;
            rg.begin = static_cast<std::uint64_t>(r.read_int());
            rg.end = static_cast<std::uint64_t>(r.read_int());
            check(rg.begin <= rg.end && rg.end <= m.space_size,
                  "range outside the space");
            m.done_ranges.push_back(rg);
        }
        const long n_files = r.read_int();
        check(n_files >= 0, "negative file count");
        m.cache_files.reserve(static_cast<std::size_t>(n_files));
        for (long i = 0; i < n_files; ++i) m.cache_files.push_back(r.read_str());
        check(r.remaining() == 0, "trailing bytes inside the body");
        return m;
    } catch (const cache_file_error&) {
        throw;
    } catch (const error& e) {
        throw cache_file_error(failure::corrupt, path, e.what());
    }
}

} // namespace phls::serve
