#include "serve/client.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace phls::serve {

channel connect_unix(const std::string& path)
{
    if (path.size() >= sizeof(sockaddr_un{}.sun_path))
        throw wire_error("unix socket path too long: " + path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw wire_error(std::string("cannot create socket: ") + std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        const std::string why = std::strerror(errno);
        ::close(fd);
        throw wire_error("cannot connect to '" + path + "': " + why);
    }
    return channel(fd, fd);
}

channel connect_tcp(const std::string& host, int port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw wire_error(std::string("cannot create socket: ") + std::strerror(errno));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        // Not a dotted quad: resolve it (covers "localhost").
        addrinfo hints{};
        hints.ai_family = AF_INET;
        hints.ai_socktype = SOCK_STREAM;
        addrinfo* found = nullptr;
        if (::getaddrinfo(host.c_str(), nullptr, &hints, &found) != 0 || !found) {
            ::close(fd);
            throw wire_error("cannot resolve host '" + host + "'");
        }
        addr.sin_addr = reinterpret_cast<sockaddr_in*>(found->ai_addr)->sin_addr;
        ::freeaddrinfo(found);
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        const std::string why = std::strerror(errno);
        ::close(fd);
        throw wire_error("cannot connect to " + host + ":" + std::to_string(port) +
                         ": " + why);
    }
    return channel(fd, fd);
}

client::client(channel ch) : ch_(std::move(ch))
{
    send_hello(ch_);
    expect_hello(ch_);
}

done_frame client::explore(const job_request& job, const dse::sink& sk)
{
    ch_.send(frame_type::job, encode_job(job));
    while (const std::optional<channel::frame> f = ch_.recv()) {
        switch (f->type) {
        case frame_type::report: {
            const report_frame r = decode_report(f->payload);
            if (sk.on_result)
                sk.on_result(static_cast<std::size_t>(r.index),
                             metric_report(r.metrics));
            break;
        }
        case frame_type::front: {
            const front_delta d = decode_front(f->payload);
            if (sk.on_front) sk.on_front(d);
            break;
        }
        case frame_type::done:
            return decode_done(f->payload);
        case frame_type::reject:
            throw error("server rejected job: " + decode_reject(f->payload).message);
        default:
            throw wire_error(std::string("protocol violation: unexpected ") +
                             frame_type_name(f->type) + " frame during a job");
        }
    }
    throw wire_error("server closed the connection mid-job");
}

void client::bye()
{
    if (!ch_.open()) return;
    ch_.send(frame_type::bye, "");
    ch_.close();
}

} // namespace phls::serve
