#include "serve/client.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <set>
#include <thread>
#include <utility>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace phls::serve {

channel connect_unix(const std::string& path)
{
    if (path.size() >= sizeof(sockaddr_un{}.sun_path))
        throw wire_error("unix socket path too long: " + path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw wire_error(std::string("cannot create socket: ") + std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        const std::string why = std::strerror(errno);
        ::close(fd);
        throw wire_error("cannot connect to '" + path + "': " + why);
    }
    return channel(fd, fd);
}

channel connect_tcp(const std::string& host, int port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw wire_error(std::string("cannot create socket: ") + std::strerror(errno));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        // Not a dotted quad: resolve it (covers "localhost").
        addrinfo hints{};
        hints.ai_family = AF_INET;
        hints.ai_socktype = SOCK_STREAM;
        addrinfo* found = nullptr;
        if (::getaddrinfo(host.c_str(), nullptr, &hints, &found) != 0 || !found) {
            ::close(fd);
            throw wire_error("cannot resolve host '" + host + "'");
        }
        addr.sin_addr = reinterpret_cast<sockaddr_in*>(found->ai_addr)->sin_addr;
        ::freeaddrinfo(found);
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        const std::string why = std::strerror(errno);
        ::close(fd);
        throw wire_error("cannot connect to " + host + ":" + std::to_string(port) +
                         ": " + why);
    }
    return channel(fd, fd);
}

client::client(channel ch) : ch_(std::move(ch))
{
    send_hello(ch_);
    expect_hello(ch_);
}

done_frame client::explore(const job_request& job, const dse::sink& sk)
{
    ch_.send(frame_type::job, encode_job(job));
    while (const std::optional<channel::frame> f = ch_.recv()) {
        switch (f->type) {
        case frame_type::report: {
            const report_frame r = decode_report(f->payload);
            if (sk.on_result)
                sk.on_result(static_cast<std::size_t>(r.index),
                             metric_report(r.metrics));
            break;
        }
        case frame_type::front: {
            const front_delta d = decode_front(f->payload);
            if (sk.on_front) sk.on_front(d);
            break;
        }
        case frame_type::done:
            return decode_done(f->payload);
        case frame_type::reject:
            throw error("server rejected job: " + decode_reject(f->payload).message);
        default:
            throw wire_error(std::string("protocol violation: unexpected ") +
                             frame_type_name(f->type) + " frame during a job");
        }
    }
    throw wire_error("server closed the connection mid-job");
}

void client::bye()
{
    if (!ch_.open()) return;
    ch_.send(frame_type::bye, "");
    ch_.close();
}

// ----------------------------------------------------- resilient_client

resilient_client::resilient_client(connector dial, const reconnect_options& opts)
    : dial_(std::move(dial)), opts_(opts)
{
    check(static_cast<bool>(dial_), "resilient_client needs a connector");
    check(opts_.max_retries >= 0, "reconnect retry count must be >= 0");
    check(opts_.backoff_ms >= 0 && opts_.backoff_cap_ms >= 0,
          "reconnect backoff must be >= 0");
}

void resilient_client::ensure_connected()
{
    if (connected_) return;
    ch_ = dial_();
    send_hello(ch_);
    expect_hello(ch_);
    connected_ = true;
}

done_frame resilient_client::explore(const job_request& job, const dse::sink& sk)
{
    // Job-scoped fold state, shared across attempts: after a reconnect
    // the warm server re-streams every point of the resubmitted job, and
    // the ones the dead connection already delivered must not reach the
    // sink (or the fold) twice.
    std::set<std::uint64_t> seen;
    pareto_stream front;
    int attempts = 0;
    int backoff = std::max(1, opts_.backoff_ms);
    for (;;) {
        try {
            ensure_connected();
            ch_.send(frame_type::job, encode_job(job));
            while (const std::optional<channel::frame> f = ch_.recv()) {
                switch (f->type) {
                case frame_type::report: {
                    const report_frame r = decode_report(f->payload);
                    if (!seen.insert(r.index).second) break; // replayed point
                    const flow_report rep = metric_report(r.metrics);
                    if (sk.on_result)
                        sk.on_result(static_cast<std::size_t>(r.index), rep);
                    // Front deltas are synthesised from the local fold of
                    // the deduplicated reports instead of trusting the
                    // server's front frames: reports arrive in the
                    // server's own fold order, so fault-free delivery is
                    // byte-identical, and after a reconnect the replayed
                    // prefix cannot re-emit deltas already seen.
                    front_delta delta;
                    front.add(static_cast<std::size_t>(r.index), rep, &delta);
                    if (delta.changed() && sk.on_front) sk.on_front(delta);
                    break;
                }
                case frame_type::front:
                    break; // synthesised locally, see above
                case frame_type::done:
                    return decode_done(f->payload);
                case frame_type::reject:
                    throw error("server rejected job: " +
                                decode_reject(f->payload).message);
                default:
                    throw wire_error(std::string("protocol violation: unexpected ") +
                                     frame_type_name(f->type) + " frame during a job");
                }
            }
            throw wire_error("server closed the connection mid-job");
        } catch (const wire_error&) {
            ch_.close();
            connected_ = false;
            if (attempts >= opts_.max_retries) throw;
            ++attempts;
            ++reconnects_;
            std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
            backoff = std::min(backoff * 2, std::max(1, opts_.backoff_cap_ms));
        }
    }
}

void resilient_client::bye()
{
    if (!connected_) return;
    try {
        ch_.send(frame_type::bye, "");
    } catch (const wire_error&) {
        // The peer is already gone; bye is best-effort by definition.
    }
    ch_.close();
    connected_ = false;
}

} // namespace phls::serve
