#include "serve/server.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "flow/strategy.h"
#include "support/errors.h"
#include "support/faultpoints.h"

namespace phls::serve {

namespace {

/// The pool key: the canonical job encoding with the per-call fields
/// (space, threads, cache path) neutralised, so two jobs collide iff
/// they describe the same problem + configuration.
std::string config_key(const job_request& job)
{
    job_request stripped = job;
    stripped.space = dse::list({});
    stripped.threads = 0;
    stripped.save_cache_path.clear();
    return encode_job(stripped);
}

/// bind() with a short doubling backoff on EADDRINUSE: CI restart loops
/// re-bind while the previous listener's socket is still draining, and
/// that is transient — anything else fails immediately.
int bind_with_retry(int fd, const sockaddr* addr, socklen_t len)
{
    int backoff_ms = 50;
    for (int attempt = 0;; ++attempt) {
        if (::bind(fd, addr, len) == 0) return 0;
        if (errno != EADDRINUSE || attempt >= 7) return -1;
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        backoff_ms = std::min(backoff_ms * 2, 500);
    }
}

} // namespace

std::shared_ptr<session_pool::slot> session_pool::acquire(const job_request& job,
                                                          std::size_t memo_limit)
{
    const std::string key = config_key(job);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = slots_.find(key);
        if (it != slots_.end()) return it->second;
    }
    // Build the session outside the pool lock: parsing the graph and
    // building the cache is heavy, and a malformed job must not stall
    // other clients.  A racing duplicate builds twice and the first
    // insert wins — wasteful but correct, like the memo stores.
    dse::session_options opts;
    opts.memo_limit = memo_limit;
    auto fresh = std::make_shared<slot>(job_flow(job), opts);
    std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] = slots_.emplace(key, std::move(fresh));
    (void)inserted;
    return it->second;
}

std::size_t session_pool::sessions_created() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return slots_.size();
}

bool run_job(channel& ch, const job_request& job, session_pool& pool,
             const serve_limits& limits, serve_stats* stats)
{
    std::shared_ptr<session_pool::slot> slot;
    try {
        // Strategy names degrade to per-point unsupported reports in a
        // local flow; a served job with an unknown name is a client
        // mistake and is refused whole instead of burning a sweep.
        if (strategy_registry::instance().synthesizer(job.synthesizer) == nullptr)
            throw error("unknown synthesizer strategy '" + job.synthesizer + "'");
        if (strategy_registry::instance().scheduler(job.scheduler) == nullptr)
            throw error("unknown scheduler strategy '" + job.scheduler + "'");
        slot = pool.acquire(job, limits.memo_limit);
    } catch (const std::exception& e) {
        if (stats) stats->rejects.fetch_add(1);
        ch.send(frame_type::reject, encode_reject(e.what()));
        return false;
    }

    std::lock_guard<std::mutex> run(slot->run);
    // Fault site: the connection dies mid-stream after the nth report.
    // The flag mutes every later frame (the evaluation itself finishes —
    // sinks must not throw into the executor) and run_job then raises a
    // plain error, not wire_error: the client_loop closes the socket
    // WITHOUT a reject frame, which is exactly what a crashed connection
    // looks like to the client — reconnect-and-retry territory, not
    // "job refused".
    bool dropped = false;
    dse::sink sk;
    sk.on_result = [&ch, &dropped](std::size_t index, const flow_report& r) {
        if (dropped) return;
        ch.send(frame_type::report, encode_report(index, metric_of(r)));
        if (fault_fire("serve.conn.drop")) dropped = true;
    };
    sk.on_front = [&ch, &dropped](const front_delta& d) {
        if (dropped) return;
        ch.send(frame_type::front, encode_front(d));
    };
    const int threads = job.threads > 0 ? job.threads : limits.threads;
    const dse::explore_summary sum = slot->session.explore(job.space, sk, threads);
    if (limits.allow_cache_save && !job.save_cache_path.empty())
        slot->session.save(job.save_cache_path);
    if (dropped) throw error("fault injected: connection dropped mid-stream");

    done_frame done;
    done.space_size = sum.space_size;
    done.evaluated = sum.evaluated;
    done.feasible = sum.feasible;
    done.metric_served = sum.metric_served;
    done.counters = slot->session.cache()->stats();
    done.front = sum.front;
    // Count the job before the done frame ships: a client holding its
    // summary must already see itself in the server's stats.
    if (stats) stats->jobs.fetch_add(1);
    ch.send(frame_type::done, encode_done(done));
    return true;
}

void serve_connection(channel& ch, session_pool& pool, const serve_limits& limits,
                      serve_stats* stats)
{
    send_hello(ch);
    expect_hello(ch);
    while (const std::optional<channel::frame> f = ch.recv()) {
        if (f->type == frame_type::bye) return;
        if (f->type != frame_type::job)
            throw wire_error(std::string("protocol violation: expected job, got ") +
                             frame_type_name(f->type));
        run_job(ch, decode_job(f->payload), pool, limits, stats);
    }
}

// --------------------------------------------------------------- server

server::server(const server_options& opts) : opts_(opts)
{
    // A client vanishing mid-stream must degrade that connection only.
    // Socket sends already use MSG_NOSIGNAL (see channel::send_raw);
    // ignoring SIGPIPE process-wide is the belt to that suspender, and
    // what any process hosting a server wants anyway.
    std::signal(SIGPIPE, SIG_IGN);
    check(opts_.max_clients >= 1, "server max_clients must be >= 1");
    if (!opts_.socket_path.empty()) {
        check(opts_.socket_path.size() < sizeof(sockaddr_un{}.sun_path),
              "unix socket path too long: " + opts_.socket_path);
        listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        check(listen_fd_ >= 0, "cannot create unix socket");
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, opts_.socket_path.c_str(),
                     sizeof addr.sun_path - 1);
        ::unlink(opts_.socket_path.c_str()); // a stale path from a dead server
        if (bind_with_retry(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                            sizeof addr) != 0) {
            const std::string why = std::strerror(errno);
            ::close(listen_fd_);
            listen_fd_ = -1;
            throw error("cannot bind unix socket '" + opts_.socket_path + "': " + why);
        }
    } else if (opts_.port >= 0) {
        listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        check(listen_fd_ >= 0, "cannot create TCP socket");
        const int one = 1;
        ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK); // never a public listener
        addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
        if (bind_with_retry(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                            sizeof addr) != 0) {
            const std::string why = std::strerror(errno);
            ::close(listen_fd_);
            listen_fd_ = -1;
            throw error("cannot bind loopback port " + std::to_string(opts_.port) +
                        ": " + why);
        }
        sockaddr_in bound{};
        socklen_t len = sizeof bound;
        ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
        port_ = static_cast<int>(ntohs(bound.sin_port));
    } else {
        throw error("server needs a unix socket path or a TCP port");
    }
    if (::listen(listen_fd_, 16) != 0) {
        const std::string why = std::strerror(errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw error("cannot listen: " + why);
    }
}

server::~server() { stop(); }

void server::run() { accept_loop(); }

void server::start()
{
    accept_thread_ = std::thread([this] { accept_loop(); });
}

void server::accept_loop()
{
    while (!stop_.load()) {
        pollfd pfd{};
        pfd.fd = listen_fd_;
        pfd.events = POLLIN;
        // A short poll bounds the latency of noticing a stop request
        // (including one from a signal handler via request_stop()).
        const int ready = ::poll(&pfd, 1, 200);
        if (ready < 0) {
            if (errno == EINTR) continue;
            break;
        }
        if (ready == 0) continue;
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR) continue;
            break; // listener closed under us (stop())
        }
        if (opts_.client_timeout_ms > 0) {
            timeval tv{};
            tv.tv_sec = opts_.client_timeout_ms / 1000;
            tv.tv_usec = (opts_.client_timeout_ms % 1000) * 1000;
            ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
            // The same bound on sends: a client that stops draining its
            // result stream times the connection out (wire_error in the
            // serving thread) instead of blocking it forever.
            ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
        }
        reap_finished_clients();
        std::size_t active = 0;
        {
            std::lock_guard<std::mutex> lock(clients_mutex_);
            active = client_slots_.size();
        }
        if (active >= static_cast<std::size_t>(opts_.max_clients)) {
            // Back-pressure, loudly: a bounded thread pool that answers
            // "at capacity" beats one thread per connection silently
            // accumulating until the host keels over.
            overloaded_.fetch_add(1);
            channel ch(fd, fd);
            try {
                send_hello(ch);
                ch.send(frame_type::reject,
                        encode_reject("server at capacity (" +
                                      std::to_string(opts_.max_clients) +
                                      " clients); retry later"));
                // Drain until the peer closes (bounded by a short recv
                // timeout, since this runs on the accept thread):
                // closing a TCP socket with unread incoming bytes
                // raises RST, which could destroy the reject before the
                // client reads it.
                timeval tv{};
                tv.tv_sec = 1;
                ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
                while (ch.recv()) {
                }
            } catch (...) {
            }
            continue; // ch closes the socket
        }
        clients_.fetch_add(1);
        auto done = std::make_shared<std::atomic<bool>>(false);
        std::lock_guard<std::mutex> lock(clients_mutex_);
        client_fds_.insert(fd);
        client_slots_.push_back(
            {std::thread([this, fd, done] { client_loop(fd, done); }), done});
    }
}

void server::client_loop(int fd, const std::shared_ptr<std::atomic<bool>>& done)
{
    channel ch(fd, fd);
    try {
        serve_connection(ch, pool_, opts_.limits, &serve_stats_);
    } catch (const wire_error& e) {
        // One bad client must not take the process down: answer with a
        // best-effort reject (the peer may already be gone) and close
        // only this connection.
        protocol_errors_.fetch_add(1);
        try {
            ch.send(frame_type::reject, encode_reject(e.what()));
        } catch (...) {
        }
    } catch (const std::exception&) {
        protocol_errors_.fetch_add(1);
    }
    {
        // Deregister and close under the lock so stop() never shuts
        // down a recycled descriptor.
        std::lock_guard<std::mutex> lock(clients_mutex_);
        client_fds_.erase(fd);
        ch.close();
    }
    // Last act, after every lock is released: a true flag tells the
    // reaper this thread can be joined without blocking.
    done->store(true);
}

void server::reap_finished_clients()
{
    std::lock_guard<std::mutex> lock(clients_mutex_);
    std::vector<client_slot> live;
    live.reserve(client_slots_.size());
    for (client_slot& c : client_slots_) {
        if (c.done->load()) {
            if (c.thread.joinable()) c.thread.join();
        } else {
            live.push_back(std::move(c));
        }
    }
    client_slots_ = std::move(live);
}

void server::stop()
{
    if (stopped_) return;
    stopped_ = true;
    stop_.store(true);
    if (accept_thread_.joinable()) accept_thread_.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    {
        // Wake clients blocked in recv() so their threads can finish.
        std::lock_guard<std::mutex> lock(clients_mutex_);
        for (const int fd : client_fds_) ::shutdown(fd, SHUT_RDWR);
    }
    // client_slots_ only grows under clients_mutex_ from the accept
    // loop, which is already joined — safe to walk unlocked.
    for (client_slot& c : client_slots_) {
        if (c.thread.joinable()) c.thread.join();
    }
    client_slots_.clear();
    if (!opts_.socket_path.empty()) ::unlink(opts_.socket_path.c_str());
}

server::stats_snapshot server::stats() const
{
    stats_snapshot s;
    s.clients = clients_.load();
    s.jobs = serve_stats_.jobs.load();
    s.rejects = serve_stats_.rejects.load();
    s.protocol_errors = protocol_errors_.load();
    s.overloaded = overloaded_.load();
    s.sessions = pool_.sessions_created();
    return s;
}

} // namespace phls::serve
