// Checkpoint-resume manifests for long-running sweeps.
//
// A sweep_manifest is the durable progress record of one sharded (or
// checkpointed local) sweep: which contiguous global index ranges are
// fully evaluated, and which cache files hold their results.  The
// orchestrator rewrites the manifest atomically as shards complete, so
// a killed sweep leaves behind an exact statement of what is done —
// `phls sweep --resume <manifest>` merges the listed cache files into a
// warm session and re-runs the space, serving every finished range from
// the metric memo and recomputing only the unfinished remainder.
//
// The file format mirrors explore-cache format v2: a magic string,
// a version and the body length in an unchecksummed header (so a torn
// tail classifies as `truncated`), the body in the canonical memo_key
// encoding, and a fixed 8-byte FNV-1a checksum of the body (so a
// flipped byte classifies as `corrupt`).  Writes go to a temporary file
// renamed into place — a crash mid-checkpoint never leaves a torn
// manifest.  Failures throw cache_file_error with the same typed kinds
// cache files use; a damaged manifest is rejected loudly, never
// silently resumed from.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dse/session.h"
#include "flow/explore_cache.h"
#include "flow/flow.h"

namespace phls::serve {

/// Progress record of one sweep over one problem configuration.
struct sweep_manifest {
    /// FNV-1a hash of the canonical job encoding of the prototype AND
    /// the swept space (graph, library, strategies, options, stages,
    /// every point's constraints), so a manifest is never resumed
    /// against a different problem or grid.
    std::uint64_t problem_hash = 0;
    /// Points the swept space describes; resume checks it matches.
    std::uint64_t space_size = 0;

    /// One fully-evaluated contiguous global index range [begin, end).
    struct range {
        std::uint64_t begin = 0;
        std::uint64_t end = 0;
    };
    std::vector<range> done_ranges;      ///< completed ranges, ascending begin
    std::vector<std::string> cache_files; ///< cache files holding their results

    /// Points covered by done_ranges.
    std::uint64_t done_points() const
    {
        std::uint64_t n = 0;
        for (const range& r : done_ranges) n += r.end - r.begin;
        return n;
    }
};

/// The problem identity a manifest pins: the hash of the canonical job
/// encoding of (prototype, space).  Deterministic across processes and
/// hosts.
std::uint64_t manifest_problem_hash(const flow& prototype, const dse::space& s);

/// Atomically writes `m` to `path` (tmp file + rename, checksummed).
/// @throws cache_file_error (kind io) when the file cannot be written.
void save_manifest(const std::string& path, const sweep_manifest& m);

/// Reads and fully validates a manifest.  @throws cache_file_error
/// carrying the path and failure kind (missing / truncated / corrupt /
/// version_mismatch) — a bad manifest never silently resumes.
sweep_manifest load_manifest(const std::string& path);

} // namespace phls::serve
