// Space sharding: one sweep, many workers, one deterministic front.
//
// explore_sharded() splits a dse::space into contiguous index ranges,
// evaluates each range on its own worker — an in-process dse::session
// per shard, or a forked subprocess speaking the wire protocol over
// pipes — and folds every delivered report into ONE global
// pareto_stream keyed by the point's global space index.  Because the
// incremental front is order-independent (the fold after the last
// report equals the post-hoc front whatever the completion order), the
// merged front is IDENTICAL to what a single-process
// dse::session::explore() over the whole space produces: same points,
// same indices, same order.
//
// Each shard owns its own explore_cache; with a cache_dir configured
// every shard persists its cache file, and the per-shard files union
// (explore_cache::merge_files, `phls cache merge`) into one cache whose
// replay behaviour matches the single warm cache.
//
// Forked workers are *supervised*: a worker that dies mid-job (crash,
// SIGKILL, torn pipe) is detected by EOF on its stream, reaped, and its
// still-undelivered points are resubmitted to a respawned worker after
// a capped exponential backoff, up to max_retries respawns per shard.
// Reports already folded before the death are deduplicated by global
// space index, so the recovered front (and every sink callback) is
// byte-identical to a fault-free run.  With a manifest_path configured
// the orchestrator atomically rewrites a checkpoint manifest as each
// shard completes (see serve/manifest.h), so a killed sweep can be
// resumed from its per-shard cache files.
//
// Adaptive (refine) spaces are rejected: their evaluation order is
// data-dependent across the whole lattice, so cutting the lattice into
// index ranges would change which points are evaluated at all.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dse/session.h"
#include "serve/wire.h"

namespace phls::serve {

/// How to split and run one sharded sweep.
struct shard_options {
    /// Number of contiguous index-range shards; must be >= 1.  Shards
    /// beyond the space size are left empty (a 3-point space on 8
    /// shards runs 3 workers).
    int shards = 1;
    /// Evaluate each shard in a forked subprocess speaking the wire
    /// protocol over pipes, instead of an in-process session per shard.
    bool processes = false;
    /// Worker threads inside each shard's evaluation (0 = hardware).
    int threads_per_shard = 1;
    /// Full-report LRU bound per shard session (0 = unbounded).
    std::size_t memo_limit = 0;
    /// When non-empty, each non-empty shard saves its cache to
    /// `<cache_dir>/shard<i>.phlscache` (the directory must exist).
    std::string cache_dir;
    /// Run each shard's slice with session::explore_guided instead of
    /// the eager walk: every shard fits its own surrogate on its slice
    /// and prunes locally.  Because the front of a union is the front
    /// of the union of per-slice fronts, per-shard front identity
    /// composes into global front identity (gated in bench_surrogate).
    /// Threads mode only — forked wire workers run eager jobs, so
    /// guided + processes is rejected.
    bool guided = false;
    /// Forwarded to guided_options::margin for every shard.
    double prune_margin = 3.0;
    /// Forwarded to guided_options::eval_budget, *per shard* (0 =
    /// unbounded).  A binding budget trades front identity for cost,
    /// exactly like the single-session knob.
    std::size_t eval_budget = 0;
    /// Respawns allowed per shard after a forked worker dies mid-job
    /// (processes mode).  0 restores fail-fast: the first worker death
    /// aborts the sweep.  Each respawned worker is handed only the
    /// shard's still-undelivered points.
    int max_retries = 2;
    /// Delay before the first respawn of a shard, doubled per respawn.
    int retry_backoff_ms = 100;
    /// Ceiling of the doubling backoff.
    int retry_backoff_cap_ms = 2000;
    /// When non-empty, the checkpoint manifest is atomically rewritten
    /// here each time a shard completes (requires cache_dir — resume
    /// replays fronts from the per-shard cache files).
    std::string manifest_path;
};

/// Outcome of one sharded sweep — the same counters as a session's
/// explore_summary, plus where the per-shard cache files went.
struct shard_summary {
    std::size_t space_size = 0;     ///< points the space describes
    std::size_t evaluated = 0;      ///< points delivered across all shards
    std::size_t feasible = 0;       ///< delivered points with an ok status
    std::size_t metric_served = 0;  ///< points answered from warm metrics
    std::size_t computed = 0;  ///< guided sweeps: exact evaluations, summed over shards
    std::size_t skipped = 0;   ///< guided sweeps: surrogate-pruned points, never delivered
    std::size_t verified = 0;  ///< guided sweeps: exact evaluations ordered by ready models
    std::vector<front_point> front; ///< global front == single-process front
    std::vector<std::string> cache_files; ///< saved per-shard caches, in shard order
    std::size_t worker_retries = 0; ///< forked workers respawned after dying mid-job
    double wall_ms = 0.0;                 ///< wall-clock time of the sweep
};

/// Evaluates `s` under `prototype`'s configuration across
/// `opts.shards` workers and merges the streamed results.  `sk`
/// receives every report with its *global* space index and every change
/// of the *global* front (calls serialised, like a session sink).
/// In processes mode the reports delivered are metric-only (they
/// crossed the wire); in threads mode they are whatever the shard
/// session computed.  Either way the returned front is byte-identical
/// to single-process explore().
/// @throws phls::error on invalid options or an adaptive space;
/// wire_error when a subprocess worker misbehaves past the respawn
/// budget (opts.max_retries per shard).
shard_summary explore_sharded(const flow& prototype, const dse::space& s,
                              const shard_options& opts, const dse::sink& sk = {});

} // namespace phls::serve
