#include "serve/wire.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

#include "cdfg/textio.h"
#include "library/library.h"
#include "support/faultpoints.h"
#include "support/memo_key.h"

namespace phls::serve {

namespace {

// "PHLS" when the four bytes are written little-endian.
constexpr std::uint32_t frame_magic = 0x534C4850u;
// Frames larger than this are rejected before allocation: no real
// payload (the largest is a job carrying a materialised point list)
// comes close, so a bigger length is garbage, not data.
constexpr std::uint32_t max_payload = 1u << 30;
constexpr std::size_t header_size = 4 + 1 + 4; // magic + type + length
constexpr std::size_t checksum_size = 8;

std::uint64_t fnv1a(const std::string& bytes)
{
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

bool known_frame_type(std::uint8_t t)
{
    return t >= static_cast<std::uint8_t>(frame_type::hello) &&
           t <= static_cast<std::uint8_t>(frame_type::bye);
}

/// Decodes a wire bool strictly: anything but 0/1 is a malformed frame
/// (this is what makes random bytes fail loudly instead of becoming a
/// plausible job).
bool wire_bool(wire_reader& r)
{
    const std::uint8_t v = r.u8();
    if (v > 1) throw wire_error("malformed frame: boolean field is " + std::to_string(v));
    return v == 1;
}

void put_point(wire_writer& w, const front_point& p)
{
    w.u64(p.index);
    w.i32(p.latency_bound);
    w.f64(p.cap);
    w.f64(p.area);
    w.f64(p.peak);
    w.i32(p.latency);
    w.u8(p.has_lifetime ? 1 : 0);
    w.f64(p.lifetime_seconds);
}

front_point get_point(wire_reader& r)
{
    front_point p;
    p.index = static_cast<std::size_t>(r.u64());
    p.latency_bound = r.i32();
    p.cap = r.f64();
    p.area = r.f64();
    p.peak = r.f64();
    p.latency = r.i32();
    p.has_lifetime = wire_bool(r);
    p.lifetime_seconds = r.f64();
    return p;
}

void put_points(wire_writer& w, const std::vector<front_point>& points)
{
    w.u32(static_cast<std::uint32_t>(points.size()));
    for (const front_point& p : points) put_point(w, p);
}

std::vector<front_point> get_points(wire_reader& r)
{
    const std::uint32_t n = r.u32();
    // Each point costs >= 40 payload bytes; a count the payload cannot
    // hold is garbage, and checking first keeps the allocation bounded.
    if (static_cast<std::uint64_t>(n) * 40 > r.remaining())
        throw wire_error("malformed frame: point count exceeds payload");
    std::vector<front_point> points;
    points.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) points.push_back(get_point(r));
    return points;
}

void put_metrics(wire_writer& w, const metric_record& m)
{
    w.u8(static_cast<std::uint8_t>(m.st.code));
    w.str(m.st.message);
    w.str(m.strategy);
    w.i32(m.constraints.latency);
    w.f64(m.constraints.max_power);
    w.u8(m.has_design ? 1 : 0);
    w.u8(m.optimal ? 1 : 0);
    w.str(m.note);
    w.f64(m.area);
    w.f64(m.peak);
    w.i32(m.latency);
    w.u8(m.has_lifetime ? 1 : 0);
    w.f64(m.lifetime_seconds);
    w.f64(m.battery_alpha);
}

metric_record get_metrics(wire_reader& r)
{
    metric_record m;
    const std::uint8_t code = r.u8();
    if (code > static_cast<std::uint8_t>(status_code::internal))
        throw wire_error("malformed frame: unknown status code " + std::to_string(code));
    m.st.code = static_cast<status_code>(code);
    m.st.message = r.str();
    m.strategy = r.str();
    m.constraints.latency = r.i32();
    m.constraints.max_power = r.f64();
    m.has_design = wire_bool(r);
    m.optimal = wire_bool(r);
    m.note = r.str();
    m.area = r.f64();
    m.peak = r.f64();
    m.latency = r.i32();
    m.has_lifetime = wire_bool(r);
    m.lifetime_seconds = r.f64();
    m.battery_alpha = r.f64();
    return m;
}

// Space payload: a list ships its points, a lattice its axes (plus the
// adaptive flag, so a refine() space survives the round trip as one).
constexpr std::uint8_t space_kind_list = 0;
constexpr std::uint8_t space_kind_lattice = 1;

void put_space(wire_writer& w, const dse::space& s)
{
    if (s.is_lattice()) {
        w.u8(space_kind_lattice);
        w.u8(s.adaptive() ? 1 : 0);
        const std::vector<int>& ts = s.latencies();
        const std::vector<double>& ps = s.caps();
        w.u32(static_cast<std::uint32_t>(ts.size()));
        for (const int t : ts) w.i32(t);
        w.u32(static_cast<std::uint32_t>(ps.size()));
        for (const double p : ps) w.f64(p);
        return;
    }
    // Lists and concatenations travel as an explicit point vector (a
    // concat of lazy lattices is materialised -- the wire cannot carry
    // an arbitrary composition tree, and jobs are finite by definition).
    w.u8(space_kind_list);
    const std::vector<synthesis_constraints> points = s.materialize();
    w.u32(static_cast<std::uint32_t>(points.size()));
    for (const synthesis_constraints& c : points) {
        w.i32(c.latency);
        w.f64(c.max_power);
    }
}

dse::space get_space(wire_reader& r)
{
    const std::uint8_t kind = r.u8();
    if (kind == space_kind_list) {
        const std::uint32_t n = r.u32();
        if (static_cast<std::uint64_t>(n) * 12 > r.remaining())
            throw wire_error("malformed frame: space point count exceeds payload");
        std::vector<synthesis_constraints> points;
        points.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
            synthesis_constraints c;
            c.latency = r.i32();
            c.max_power = r.f64();
            points.push_back(c);
        }
        return dse::list(std::move(points));
    }
    if (kind == space_kind_lattice) {
        const bool adaptive = wire_bool(r);
        const std::uint32_t nt = r.u32();
        if (static_cast<std::uint64_t>(nt) * 4 > r.remaining())
            throw wire_error("malformed frame: latency axis exceeds payload");
        std::vector<int> ts;
        ts.reserve(nt);
        for (std::uint32_t i = 0; i < nt; ++i) ts.push_back(r.i32());
        const std::uint32_t np = r.u32();
        if (static_cast<std::uint64_t>(np) * 8 > r.remaining())
            throw wire_error("malformed frame: cap axis exceeds payload");
        std::vector<double> ps;
        ps.reserve(np);
        for (std::uint32_t i = 0; i < np; ++i) ps.push_back(r.f64());
        if (ts.empty() || ps.empty())
            throw wire_error("malformed frame: empty lattice axis");
        return adaptive ? dse::refine(std::move(ts), std::move(ps))
                        : dse::cross(std::move(ts), std::move(ps));
    }
    throw wire_error("malformed frame: unknown space kind " + std::to_string(kind));
}

} // namespace

const char* frame_type_name(frame_type t)
{
    switch (t) {
    case frame_type::hello: return "hello";
    case frame_type::job: return "job";
    case frame_type::report: return "report";
    case frame_type::front: return "front";
    case frame_type::done: return "done";
    case frame_type::reject: return "reject";
    case frame_type::bye: return "bye";
    }
    return "unknown";
}

// ------------------------------------------------------------- encoding

void wire_writer::u32(std::uint32_t v)
{
    char b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    bytes_.append(b, sizeof b);
}

void wire_writer::u64(std::uint64_t v)
{
    char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    bytes_.append(b, sizeof b);
}

void wire_writer::f64(double v) { u64(key_double_bits(v)); }

void wire_writer::str(const std::string& s)
{
    u32(static_cast<std::uint32_t>(s.size()));
    bytes_ += s;
}

std::uint8_t wire_reader::u8()
{
    if (remaining() < 1) throw wire_error("malformed frame: payload truncated");
    return static_cast<std::uint8_t>(bytes_[pos_++]);
}

std::uint32_t wire_reader::u32()
{
    if (remaining() < 4) throw wire_error("malformed frame: payload truncated");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes_[pos_ + i]))
             << (8 * i);
    pos_ += 4;
    return v;
}

std::uint64_t wire_reader::u64()
{
    if (remaining() < 8) throw wire_error("malformed frame: payload truncated");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes_[pos_ + i]))
             << (8 * i);
    pos_ += 8;
    return v;
}

double wire_reader::f64()
{
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

std::string wire_reader::str()
{
    const std::uint32_t n = u32();
    if (n > remaining()) throw wire_error("malformed frame: string runs past the end");
    std::string s = bytes_.substr(pos_, n);
    pos_ += n;
    return s;
}

void wire_reader::expect_end() const
{
    if (remaining() != 0)
        throw wire_error("malformed frame: " + std::to_string(remaining()) +
                         " trailing payload bytes");
}

// -------------------------------------------------------------- framing

std::string encode_frame(frame_type t, const std::string& payload)
{
    check(payload.size() <= max_payload, "wire payload too large");
    wire_writer w;
    w.u32(frame_magic);
    w.u8(static_cast<std::uint8_t>(t));
    w.u32(static_cast<std::uint32_t>(payload.size()));
    std::string frame = w.take();
    frame += payload;
    wire_writer tail;
    tail.u64(fnv1a(payload));
    frame += tail.bytes();
    return frame;
}

channel::channel(int read_fd, int write_fd) : read_fd_(read_fd), write_fd_(write_fd) {}

channel::channel(channel&& other) noexcept
    : read_fd_(other.read_fd_), write_fd_(other.write_fd_),
      send_is_socket_(other.send_is_socket_)
{
    other.read_fd_ = -1;
    other.write_fd_ = -1;
    other.send_is_socket_ = -1;
}

channel& channel::operator=(channel&& other) noexcept
{
    if (this != &other) {
        close();
        read_fd_ = other.read_fd_;
        write_fd_ = other.write_fd_;
        send_is_socket_ = other.send_is_socket_;
        other.read_fd_ = -1;
        other.write_fd_ = -1;
        other.send_is_socket_ = -1;
    }
    return *this;
}

channel::~channel() { close(); }

void channel::close()
{
    if (read_fd_ >= 0) ::close(read_fd_);
    if (write_fd_ >= 0 && write_fd_ != read_fd_) ::close(write_fd_);
    read_fd_ = -1;
    write_fd_ = -1;
}

void channel::send_raw(const std::string& bytes)
{
    if (write_fd_ < 0) throw wire_error("send on a closed channel");
    if (fault_fire("wire.send.fail"))
        throw wire_error("fault injected: wire send failed");
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        ssize_t n;
        if (send_is_socket_ != 0) {
            // MSG_NOSIGNAL turns a vanished socket peer into EPIPE
            // instead of a process-killing SIGPIPE; pipes answer
            // ENOTSOCK once and fall back to ::write permanently.
            n = ::send(write_fd_, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
            if (n < 0 && errno == ENOTSOCK) {
                send_is_socket_ = 0;
                continue;
            }
            if (send_is_socket_ < 0 && n >= 0) send_is_socket_ = 1;
        } else {
            n = ::write(write_fd_, bytes.data() + sent, bytes.size() - sent);
        }
        if (n < 0) {
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                throw wire_error("wire send timed out");
            if (errno == EPIPE)
                throw wire_error("wire send failed: peer closed the connection");
            throw wire_error(std::string("wire send failed: ") + std::strerror(errno));
        }
        sent += static_cast<std::size_t>(n);
    }
}

void channel::send(frame_type t, const std::string& payload)
{
    const std::string frame = encode_frame(t, payload);
    // Fault site: the peer observes EOF mid-payload — the "worker died
    // half-way through a frame" transport failure.
    if (fault_fire("wire.send.truncate")) {
        send_raw(frame.substr(0, frame.size() / 2));
        close();
        throw wire_error("fault injected: frame truncated mid-send");
    }
    send_raw(frame);
}

namespace {

/// Reads exactly `n` bytes into `out`.  Returns the bytes read, which is
/// short only at EOF; throws wire_error on errors and timeouts.
std::size_t read_exact(int fd, std::string& out, std::size_t n)
{
    out.resize(n);
    std::size_t got = 0;
    while (got < n) {
        const ssize_t r = ::read(fd, out.data() + got, n - got);
        if (r < 0) {
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                throw wire_error("wire receive timed out");
            throw wire_error(std::string("wire receive failed: ") +
                             std::strerror(errno));
        }
        if (r == 0) break; // EOF
        got += static_cast<std::size_t>(r);
    }
    out.resize(got);
    return got;
}

} // namespace

std::optional<channel::frame> channel::recv()
{
    if (read_fd_ < 0) throw wire_error("receive on a closed channel");
    if (fault_fire("wire.recv.fail"))
        throw wire_error("fault injected: wire receive failed");
    std::string header;
    const std::size_t got = read_exact(read_fd_, header, header_size);
    if (got == 0) return std::nullopt; // clean EOF at a frame boundary
    if (got < header_size) throw wire_error("truncated frame: EOF inside the header");

    wire_reader h(header);
    if (h.u32() != frame_magic) throw wire_error("malformed frame: bad magic");
    const std::uint8_t type = h.u8();
    if (!known_frame_type(type))
        throw wire_error("malformed frame: unknown type " + std::to_string(type));
    const std::uint32_t length = h.u32();
    if (length > max_payload)
        throw wire_error("malformed frame: declared payload of " +
                         std::to_string(length) + " bytes");

    std::string body;
    if (read_exact(read_fd_, body, length + checksum_size) != length + checksum_size)
        throw wire_error("truncated frame: EOF inside the payload");
    frame f;
    f.type = static_cast<frame_type>(type);
    f.payload = body.substr(0, length);
    const std::string tail = body.substr(length);
    wire_reader cks(tail);
    if (cks.u64() != fnv1a(f.payload))
        throw wire_error("malformed frame: checksum mismatch");
    return f;
}

void send_hello(channel& ch)
{
    ch.send(frame_type::hello, encode_hello(wire_protocol_version));
}

std::uint32_t expect_hello(channel& ch)
{
    const std::optional<channel::frame> f = ch.recv();
    if (!f) throw wire_error("peer closed the connection before the handshake");
    if (f->type != frame_type::hello)
        throw wire_error(std::string("protocol violation: expected hello, got ") +
                         frame_type_name(f->type));
    const std::uint32_t version = decode_hello(f->payload);
    if (version != wire_protocol_version)
        throw wire_error("protocol version mismatch: peer speaks v" +
                         std::to_string(version) + ", this build speaks v" +
                         std::to_string(wire_protocol_version));
    return version;
}

// ------------------------------------------------------------- payloads

std::string encode_hello(std::uint32_t version)
{
    wire_writer w;
    w.u32(version);
    return w.take();
}

std::uint32_t decode_hello(const std::string& payload)
{
    wire_reader r(payload);
    const std::uint32_t version = r.u32();
    r.expect_end();
    return version;
}

job_request make_job(const flow& prototype, const dse::space& s)
{
    job_request job;
    job.graph_text = write_cdfg_string(prototype.design());
    job.library_text = write_library_string(prototype.library());
    job.synthesizer = prototype.synthesizer_name();
    job.scheduler = prototype.scheduler_name();
    job.options = prototype.synthesis_opts();
    job.exact = prototype.exact_opts();
    job.want_netlist = prototype.wants_netlist();
    job.want_lifetime = prototype.wants_lifetime();
    job.lifetime = prototype.lifetime();
    job.space = s;
    return job;
}

flow job_flow(const job_request& job)
{
    flow f = flow::on(parse_cdfg_string(job.graph_text));
    f.with_library(parse_library_string(job.library_text));
    f.synthesizer(job.synthesizer);
    f.scheduler(job.scheduler);
    f.options(job.options);
    f.exact_budget(job.exact);
    if (job.want_netlist) f.emit_netlist();
    if (job.want_lifetime) f.estimate_lifetime(job.lifetime);
    return f;
}

std::string encode_job(const job_request& job)
{
    wire_writer w;
    w.str(job.graph_text);
    w.str(job.library_text);
    w.str(job.synthesizer);
    w.str(job.scheduler);
    const synthesis_options& o = job.options;
    w.u8(static_cast<std::uint8_t>(o.policy));
    w.u8(o.try_both_prospects ? 1 : 0);
    w.u8(static_cast<std::uint8_t>(o.order));
    w.f64(o.costs.register_area);
    w.f64(o.costs.mux_area_per_extra_input);
    w.u8(o.costs.include_interconnect ? 1 : 0);
    w.u8(o.enable_backtrack_lock ? 1 : 0);
    w.u8(o.lock_from_start ? 1 : 0);
    w.u8(o.allow_cheapest_rebind ? 1 : 0);
    w.u8(o.verify_result ? 1 : 0);
    w.i32(o.max_merge_attempts);
    const exact_options& e = job.exact;
    w.i32(e.max_operations);
    w.i64(e.node_limit);
    w.f64(e.costs.register_area);
    w.f64(e.costs.mux_area_per_extra_input);
    w.u8(e.costs.include_interconnect ? 1 : 0);
    w.u8(job.want_netlist ? 1 : 0);
    w.u8(job.want_lifetime ? 1 : 0);
    const lifetime_spec& l = job.lifetime;
    w.f64(l.voltage);
    w.f64(l.cycle_seconds);
    w.i32(l.idle_cycles);
    w.f64(l.beta);
    w.f64(l.alpha);
    w.f64(l.max_seconds);
    put_space(w, job.space);
    w.i32(job.threads);
    w.str(job.save_cache_path);
    return w.take();
}

job_request decode_job(const std::string& payload)
{
    wire_reader r(payload);
    job_request job;
    job.graph_text = r.str();
    job.library_text = r.str();
    job.synthesizer = r.str();
    job.scheduler = r.str();
    synthesis_options& o = job.options;
    const std::uint8_t policy = r.u8();
    if (policy > static_cast<std::uint8_t>(prospect_policy::cheapest_fit))
        throw wire_error("malformed frame: unknown prospect policy " +
                         std::to_string(policy));
    o.policy = static_cast<prospect_policy>(policy);
    o.try_both_prospects = wire_bool(r);
    const std::uint8_t order = r.u8();
    if (order > static_cast<std::uint8_t>(pasap_order::critical_path))
        throw wire_error("malformed frame: unknown pasap order " +
                         std::to_string(order));
    o.order = static_cast<pasap_order>(order);
    o.costs.register_area = r.f64();
    o.costs.mux_area_per_extra_input = r.f64();
    o.costs.include_interconnect = wire_bool(r);
    o.enable_backtrack_lock = wire_bool(r);
    o.lock_from_start = wire_bool(r);
    o.allow_cheapest_rebind = wire_bool(r);
    o.verify_result = wire_bool(r);
    o.max_merge_attempts = r.i32();
    exact_options& e = job.exact;
    e.max_operations = r.i32();
    e.node_limit = static_cast<long>(r.i64());
    e.costs.register_area = r.f64();
    e.costs.mux_area_per_extra_input = r.f64();
    e.costs.include_interconnect = wire_bool(r);
    job.want_netlist = wire_bool(r);
    job.want_lifetime = wire_bool(r);
    lifetime_spec& l = job.lifetime;
    l.voltage = r.f64();
    l.cycle_seconds = r.f64();
    l.idle_cycles = r.i32();
    l.beta = r.f64();
    l.alpha = r.f64();
    l.max_seconds = r.f64();
    job.space = get_space(r);
    job.threads = r.i32();
    job.save_cache_path = r.str();
    r.expect_end();
    return job;
}

std::string encode_report(std::uint64_t index, const metric_record& metrics)
{
    wire_writer w;
    w.u64(index);
    put_metrics(w, metrics);
    return w.take();
}

report_frame decode_report(const std::string& payload)
{
    wire_reader r(payload);
    report_frame f;
    f.index = r.u64();
    f.metrics = get_metrics(r);
    r.expect_end();
    return f;
}

std::string encode_front(const front_delta& delta)
{
    wire_writer w;
    w.u64(delta.index);
    put_points(w, delta.entered);
    put_points(w, delta.left);
    return w.take();
}

front_delta decode_front(const std::string& payload)
{
    wire_reader r(payload);
    front_delta delta;
    delta.index = static_cast<std::size_t>(r.u64());
    delta.entered = get_points(r);
    delta.left = get_points(r);
    r.expect_end();
    return delta;
}

std::string encode_done(const done_frame& done)
{
    wire_writer w;
    w.u64(done.space_size);
    w.u64(done.evaluated);
    w.u64(done.feasible);
    w.u64(done.metric_served);
    w.i64(done.counters.hits);
    w.i64(done.counters.misses);
    w.i64(done.counters.committed_hits);
    w.i64(done.counters.committed_misses);
    w.i64(done.counters.report_hits);
    w.i64(done.counters.report_misses);
    w.i64(done.counters.metric_hits);
    put_points(w, done.front);
    return w.take();
}

done_frame decode_done(const std::string& payload)
{
    wire_reader r(payload);
    done_frame done;
    done.space_size = r.u64();
    done.evaluated = r.u64();
    done.feasible = r.u64();
    done.metric_served = r.u64();
    done.counters.hits = static_cast<long>(r.i64());
    done.counters.misses = static_cast<long>(r.i64());
    done.counters.committed_hits = static_cast<long>(r.i64());
    done.counters.committed_misses = static_cast<long>(r.i64());
    done.counters.report_hits = static_cast<long>(r.i64());
    done.counters.report_misses = static_cast<long>(r.i64());
    done.counters.metric_hits = static_cast<long>(r.i64());
    done.front = get_points(r);
    r.expect_end();
    return done;
}

std::string encode_reject(const std::string& message)
{
    wire_writer w;
    w.str(message);
    return w.take();
}

reject_frame decode_reject(const std::string& payload)
{
    wire_reader r(payload);
    reject_frame f;
    f.message = r.str();
    r.expect_end();
    return f;
}

} // namespace phls::serve
