#include "serve/shard.h"

#include <chrono>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include <sys/wait.h>
#include <unistd.h>

#include "serve/server.h"
#include "support/errors.h"

namespace phls::serve {

namespace {

/// One shard's contiguous slice of the global index range.
struct index_range {
    std::size_t begin = 0;
    std::size_t end = 0;
    bool empty() const { return begin >= end; }
};

std::vector<index_range> split(std::size_t size, int shards)
{
    std::vector<index_range> ranges(static_cast<std::size_t>(shards));
    for (int i = 0; i < shards; ++i) {
        ranges[static_cast<std::size_t>(i)].begin =
            size * static_cast<std::size_t>(i) / static_cast<std::size_t>(shards);
        ranges[static_cast<std::size_t>(i)].end =
            size * static_cast<std::size_t>(i + 1) / static_cast<std::size_t>(shards);
    }
    return ranges;
}

/// The shard's slice as an explicit point list; its local index `li`
/// is global index `range.begin + li`.
dse::space sub_space(const dse::space& s, const index_range& r)
{
    std::vector<synthesis_constraints> points;
    points.reserve(r.end - r.begin);
    for (std::size_t j = r.begin; j < r.end; ++j) points.push_back(s.at(j));
    return dse::list(std::move(points));
}

std::string shard_cache_path(const std::string& dir, int shard)
{
    return dir + "/shard" + std::to_string(shard) + ".phlscache";
}

/// The global fold: every shard's reports land here under one lock, are
/// folded into one pareto_stream by *global* index, and fan out to the
/// caller's sink.  Folding is order-independent, so the final front
/// does not depend on shard interleaving.
struct merge_state {
    std::mutex mutex;
    pareto_stream front;
    shard_summary summary;
    const dse::sink* sk = nullptr;

    void deliver(std::size_t global_index, const flow_report& report)
    {
        std::lock_guard<std::mutex> lock(mutex);
        ++summary.evaluated;
        if (report.st.ok()) ++summary.feasible;
        front_delta delta;
        front.add(global_index, report, &delta);
        if (sk->on_result) sk->on_result(global_index, report);
        if (delta.changed() && sk->on_front) sk->on_front(delta);
    }

    void add_metric_served(std::size_t n)
    {
        std::lock_guard<std::mutex> lock(mutex);
        summary.metric_served += n;
    }

    void add_guided(const dse::guided_summary& sum)
    {
        std::lock_guard<std::mutex> lock(mutex);
        summary.metric_served += sum.metric_served;
        summary.computed += sum.computed;
        summary.skipped += sum.skipped;
        summary.verified += sum.verified;
    }
};

void run_shards_threads(const flow& prototype, const dse::space& s,
                        const std::vector<index_range>& ranges,
                        const shard_options& opts, merge_state& state)
{
    struct worker {
        index_range range;
        dse::space sub = dse::list({});
        std::unique_ptr<dse::session> session;
        std::string cache_path;
        std::exception_ptr failure;
    };
    // Sessions (and their caches) are built up front on this thread, so
    // construction errors surface before anything runs.
    std::vector<worker> workers;
    for (std::size_t i = 0; i < ranges.size(); ++i) {
        if (ranges[i].empty()) continue;
        worker w;
        w.range = ranges[i];
        w.sub = sub_space(s, ranges[i]);
        dse::session_options so;
        so.memo_limit = opts.memo_limit;
        w.session = std::make_unique<dse::session>(prototype, so);
        if (!opts.cache_dir.empty())
            w.cache_path = shard_cache_path(opts.cache_dir, static_cast<int>(i));
        workers.push_back(std::move(w));
    }

    std::vector<std::thread> threads;
    threads.reserve(workers.size());
    for (worker& w : workers) {
        threads.emplace_back([&w, &opts, &state] {
            try {
                dse::sink local;
                local.on_result = [&w, &state](std::size_t li, const flow_report& r) {
                    state.deliver(w.range.begin + li, r);
                };
                if (opts.guided) {
                    dse::guided_options go;
                    go.margin = opts.prune_margin;
                    go.eval_budget = opts.eval_budget;
                    const dse::guided_summary sum = w.session->explore_guided(
                        w.sub, go, local, opts.threads_per_shard);
                    state.add_guided(sum);
                } else {
                    const dse::explore_summary sum =
                        w.session->explore(w.sub, local, opts.threads_per_shard);
                    state.add_metric_served(sum.metric_served);
                }
                if (!w.cache_path.empty()) w.session->save(w.cache_path);
            } catch (...) {
                w.failure = std::current_exception();
            }
        });
    }
    for (std::thread& t : threads) t.join();
    for (worker& w : workers) {
        if (w.failure) std::rethrow_exception(w.failure);
        if (!w.cache_path.empty()) state.summary.cache_files.push_back(w.cache_path);
    }
}

void run_shards_processes(const flow& prototype, const dse::space& s,
                          const std::vector<index_range>& ranges,
                          const shard_options& opts, merge_state& state)
{
    struct worker {
        index_range range;
        int shard = 0;
        pid_t pid = -1;
        int job_write = -1;   ///< parent -> child
        int stream_read = -1; ///< child -> parent
        std::string cache_path;
        std::exception_ptr failure;
    };
    std::vector<worker> workers;

    // Fork every worker from this (single-threaded at this point)
    // process first; reader threads only start once all children exist,
    // so no child is ever forked while another thread holds a lock.
    std::vector<int> parent_fds; // earlier workers' ends, closed in later children
    for (std::size_t i = 0; i < ranges.size(); ++i) {
        if (ranges[i].empty()) continue;
        int to_child[2];
        int to_parent[2];
        check(::pipe(to_child) == 0 && ::pipe(to_parent) == 0,
              "cannot create shard worker pipes");
        const pid_t pid = ::fork();
        check(pid >= 0, "cannot fork shard worker");
        if (pid == 0) {
            // Child: drop the parent-side ends -- ours and every earlier
            // sibling's, so a sibling's EOF is decided by the parent
            // alone -- and serve the pipe until the parent says bye.
            ::close(to_child[1]);
            ::close(to_parent[0]);
            for (const int fd : parent_fds) ::close(fd);
            int code = 0;
            try {
                channel ch(to_child[0], to_parent[1]);
                session_pool pool;
                serve_limits limits;
                limits.threads = opts.threads_per_shard;
                limits.memo_limit = opts.memo_limit;
                limits.allow_cache_save = true; // shard cache files
                serve_connection(ch, pool, limits);
            } catch (...) {
                code = 1;
            }
            ::_exit(code);
        }
        ::close(to_child[0]);
        ::close(to_parent[1]);
        worker w;
        w.range = ranges[i];
        w.shard = static_cast<int>(i);
        w.pid = pid;
        w.job_write = to_child[1];
        w.stream_read = to_parent[0];
        if (!opts.cache_dir.empty())
            w.cache_path = shard_cache_path(opts.cache_dir, w.shard);
        parent_fds.push_back(w.job_write);
        parent_fds.push_back(w.stream_read);
        workers.push_back(std::move(w));
    }

    // One reader thread per worker: submit the shard's job, fold every
    // streamed report into the global front as it arrives.
    std::vector<std::thread> readers;
    readers.reserve(workers.size());
    for (worker& w : workers) {
        readers.emplace_back([&w, &prototype, &s, &opts, &state] {
            try {
                channel ch(w.stream_read, w.job_write);
                w.stream_read = -1; // the channel owns them now
                w.job_write = -1;
                send_hello(ch);
                expect_hello(ch);
                job_request job = make_job(prototype, sub_space(s, w.range));
                job.threads = opts.threads_per_shard;
                job.save_cache_path = w.cache_path;
                ch.send(frame_type::job, encode_job(job));
                while (const std::optional<channel::frame> f = ch.recv()) {
                    if (f->type == frame_type::report) {
                        const report_frame r = decode_report(f->payload);
                        state.deliver(w.range.begin + static_cast<std::size_t>(r.index),
                                      metric_report(r.metrics));
                        continue;
                    }
                    if (f->type == frame_type::front) continue; // folded globally
                    if (f->type == frame_type::done) {
                        const done_frame done = decode_done(f->payload);
                        state.add_metric_served(done.metric_served);
                        ch.send(frame_type::bye, "");
                        return;
                    }
                    if (f->type == frame_type::reject)
                        throw error("shard worker rejected its job: " +
                                    decode_reject(f->payload).message);
                    throw wire_error(std::string("protocol violation: unexpected ") +
                                     frame_type_name(f->type) +
                                     " frame from a shard worker");
                }
                throw wire_error("shard worker closed its pipe mid-job");
            } catch (...) {
                w.failure = std::current_exception();
            }
        });
    }
    for (std::thread& t : readers) t.join();

    // Reap every child before reporting failures, so no worker outlives
    // the call whatever happened.
    std::exception_ptr first_failure;
    for (worker& w : workers) {
        int wstatus = 0;
        ::waitpid(w.pid, &wstatus, 0);
        if (w.failure && !first_failure) first_failure = w.failure;
        if (!first_failure && (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0))
            first_failure = std::make_exception_ptr(
                wire_error("shard worker " + std::to_string(w.shard) +
                           " exited abnormally"));
    }
    if (first_failure) std::rethrow_exception(first_failure);
    for (const worker& w : workers)
        if (!w.cache_path.empty()) state.summary.cache_files.push_back(w.cache_path);
}

} // namespace

shard_summary explore_sharded(const flow& prototype, const dse::space& s,
                              const shard_options& opts, const dse::sink& sk)
{
    check(opts.shards >= 1, "shard count must be >= 1");
    check(!s.adaptive(),
          "adaptive (refine) spaces cannot be sharded: subdivision decisions "
          "span the whole lattice -- evaluate them in one session");
    check(!(opts.guided && opts.processes),
          "guided sweeps cannot use forked shard workers: wire jobs are "
          "eager -- use in-process (threads) shards");
    const auto started = std::chrono::steady_clock::now();

    merge_state state;
    state.sk = &sk;
    state.summary.space_size = s.size();
    const std::vector<index_range> ranges = split(s.size(), opts.shards);
    if (opts.processes)
        run_shards_processes(prototype, s, ranges, opts, state);
    else
        run_shards_threads(prototype, s, ranges, opts, state);

    state.summary.front = state.front.front();
    state.summary.wall_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - started)
                                .count();
    return state.summary;
}

} // namespace phls::serve
