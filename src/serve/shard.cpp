#include "serve/shard.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include <sys/wait.h>
#include <unistd.h>

#include "serve/manifest.h"
#include "serve/server.h"
#include "support/errors.h"
#include "support/faultpoints.h"

namespace phls::serve {

namespace {

/// One shard's contiguous slice of the global index range.
struct index_range {
    std::size_t begin = 0;
    std::size_t end = 0;
    bool empty() const { return begin >= end; }
};

std::vector<index_range> split(std::size_t size, int shards)
{
    std::vector<index_range> ranges(static_cast<std::size_t>(shards));
    for (int i = 0; i < shards; ++i) {
        ranges[static_cast<std::size_t>(i)].begin =
            size * static_cast<std::size_t>(i) / static_cast<std::size_t>(shards);
        ranges[static_cast<std::size_t>(i)].end =
            size * static_cast<std::size_t>(i + 1) / static_cast<std::size_t>(shards);
    }
    return ranges;
}

/// The shard's slice as an explicit point list; its local index `li`
/// is global index `range.begin + li`.
dse::space sub_space(const dse::space& s, const index_range& r)
{
    std::vector<synthesis_constraints> points;
    points.reserve(r.end - r.begin);
    for (std::size_t j = r.begin; j < r.end; ++j) points.push_back(s.at(j));
    return dse::list(std::move(points));
}

std::string shard_cache_path(const std::string& dir, int shard)
{
    return dir + "/shard" + std::to_string(shard) + ".phlscache";
}

/// Parent-side SIGPIPE suppression for the lifetime of a forked-worker
/// sweep: a job write racing a worker's death must surface as EPIPE
/// (-> wire_error -> the retry path), not kill the orchestrator.
struct sigpipe_guard {
    void (*previous)(int);
    sigpipe_guard() : previous(std::signal(SIGPIPE, SIG_IGN)) {}
    ~sigpipe_guard() { std::signal(SIGPIPE, previous); }
};

/// The global fold: every shard's reports land here under one lock, are
/// folded into one pareto_stream by *global* index, and fan out to the
/// caller's sink.  Folding is order-independent, so the final front
/// does not depend on shard interleaving.  Each index folds at most
/// once — a respawned worker re-evaluating points its predecessor
/// already streamed cannot double-count them — so the front and every
/// sink callback stay byte-identical to a fault-free run.
struct merge_state {
    std::mutex mutex;
    pareto_stream front;
    shard_summary summary;
    std::vector<char> delivered; ///< per global index: folded already?
    const dse::sink* sk = nullptr;

    void deliver(std::size_t global_index, const flow_report& report)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (delivered[global_index]) return; // replay from a retried worker
        delivered[global_index] = 1;
        ++summary.evaluated;
        if (report.st.ok()) ++summary.feasible;
        front_delta delta;
        front.add(global_index, report, &delta);
        if (sk->on_result) sk->on_result(global_index, report);
        if (delta.changed() && sk->on_front) sk->on_front(delta);
    }

    /// The shard's points not yet folded, ascending — what a respawned
    /// worker is handed.  Exact: a dead worker's pipe only reports EOF
    /// after every frame it managed to write has been drained.
    std::vector<std::size_t> undelivered_in(const index_range& r)
    {
        std::lock_guard<std::mutex> lock(mutex);
        std::vector<std::size_t> pending;
        for (std::size_t g = r.begin; g < r.end; ++g)
            if (!delivered[g]) pending.push_back(g);
        return pending;
    }

    void add_metric_served(std::size_t n)
    {
        std::lock_guard<std::mutex> lock(mutex);
        summary.metric_served += n;
    }

    void add_guided(const dse::guided_summary& sum)
    {
        std::lock_guard<std::mutex> lock(mutex);
        summary.metric_served += sum.metric_served;
        summary.computed += sum.computed;
        summary.skipped += sum.skipped;
        summary.verified += sum.verified;
    }

    void count_retry()
    {
        std::lock_guard<std::mutex> lock(mutex);
        ++summary.worker_retries;
    }
};

/// The checkpoint manifest, rewritten atomically whenever a shard
/// completes — even a sweep that later throws leaves behind an exact
/// record of the ranges (and cache files) already done.
struct manifest_state {
    std::mutex mutex;
    std::string path; ///< empty = checkpointing off
    sweep_manifest m;

    void shard_done(const index_range& r, const std::string& cache_path)
    {
        if (path.empty()) return;
        std::lock_guard<std::mutex> lock(mutex);
        m.done_ranges.push_back({r.begin, r.end});
        std::sort(m.done_ranges.begin(), m.done_ranges.end(),
                  [](const sweep_manifest::range& a, const sweep_manifest::range& b) {
                      return a.begin < b.begin;
                  });
        if (!cache_path.empty()) {
            m.cache_files.push_back(cache_path);
            std::sort(m.cache_files.begin(), m.cache_files.end());
        }
        save_manifest(path, m);
    }
};

void run_shards_threads(const flow& prototype, const dse::space& s,
                        const std::vector<index_range>& ranges,
                        const shard_options& opts, merge_state& state,
                        manifest_state& manifest)
{
    struct worker {
        index_range range;
        dse::space sub = dse::list({});
        std::unique_ptr<dse::session> session;
        std::string cache_path;
        std::exception_ptr failure;
    };
    // Sessions (and their caches) are built up front on this thread, so
    // construction errors surface before anything runs.
    std::vector<worker> workers;
    for (std::size_t i = 0; i < ranges.size(); ++i) {
        if (ranges[i].empty()) continue;
        worker w;
        w.range = ranges[i];
        w.sub = sub_space(s, ranges[i]);
        dse::session_options so;
        so.memo_limit = opts.memo_limit;
        w.session = std::make_unique<dse::session>(prototype, so);
        if (!opts.cache_dir.empty())
            w.cache_path = shard_cache_path(opts.cache_dir, static_cast<int>(i));
        workers.push_back(std::move(w));
    }

    std::vector<std::thread> threads;
    threads.reserve(workers.size());
    for (worker& w : workers) {
        threads.emplace_back([&w, &opts, &state, &manifest] {
            try {
                dse::sink local;
                local.on_result = [&w, &state](std::size_t li, const flow_report& r) {
                    state.deliver(w.range.begin + li, r);
                };
                if (opts.guided) {
                    dse::guided_options go;
                    go.margin = opts.prune_margin;
                    go.eval_budget = opts.eval_budget;
                    const dse::guided_summary sum = w.session->explore_guided(
                        w.sub, go, local, opts.threads_per_shard);
                    state.add_guided(sum);
                } else {
                    const dse::explore_summary sum =
                        w.session->explore(w.sub, local, opts.threads_per_shard);
                    state.add_metric_served(sum.metric_served);
                }
                if (!w.cache_path.empty()) w.session->save(w.cache_path);
                manifest.shard_done(w.range, w.cache_path);
            } catch (...) {
                w.failure = std::current_exception();
            }
        });
    }
    for (std::thread& t : threads) t.join();
    for (worker& w : workers) {
        if (w.failure) std::rethrow_exception(w.failure);
        if (!w.cache_path.empty()) state.summary.cache_files.push_back(w.cache_path);
    }
}

// ------------------------------------------------- supervised processes

/// Parent-side ends of every live worker's pipes.  A child forked for
/// one shard must close the ends belonging to every *other* shard, or a
/// sibling's EOF (the parent's death-detection signal) would wait on
/// this child too.  Spawns run under the lock, so no fd can slip into a
/// concurrently-forked child unregistered.
struct fd_registry {
    std::mutex mutex;
    std::vector<int> fds;
};

struct proc_worker {
    index_range range;
    int shard = 0;
    pid_t pid = -1;
    int stream_read = -1; ///< child -> parent (registry bookkeeping)
    int job_write = -1;   ///< parent -> child (registry bookkeeping)
    /// Open channel over the two fds above.  Holds a value exactly
    /// while the fds are registered and the child is unreaped.
    std::optional<channel> ch;
    std::string cache_path;
    std::exception_ptr failure;
};

/// Forks one worker child for `w` and wires its pipes.  Safe to call
/// from a reader thread mid-sweep (a respawn): glibc's atfork handlers
/// make malloc usable in the child, the child only runs serve code and
/// _exit(), and the registry lock is parent-only state it never takes.
void spawn_worker(fd_registry& reg, const shard_options& opts, proc_worker& w)
{
    std::lock_guard<std::mutex> lock(reg.mutex);
    int to_child[2];
    int to_parent[2];
    check(::pipe(to_child) == 0 && ::pipe(to_parent) == 0,
          "cannot create shard worker pipes");
    // Fault site: this spawn produces a dead-on-arrival worker.  The
    // verdict is decided parent-side before the fork, so respawned
    // children (which inherit the fault counters) cannot re-fire it.
    const bool doomed = fault_fire("shard.spawn.doom");
    const pid_t pid = ::fork();
    check(pid >= 0, "cannot fork shard worker");
    if (pid == 0) {
        if (doomed) ::_exit(137);
        // Child: drop every parent-side end -- ours and every other
        // live worker's, so a sibling's EOF is decided by the parent
        // alone -- and serve the pipe until the parent says bye.
        ::close(to_child[1]);
        ::close(to_parent[0]);
        for (const int fd : reg.fds) ::close(fd);
        int code = 0;
        try {
            channel ch(to_child[0], to_parent[1]);
            session_pool pool;
            serve_limits limits;
            limits.threads = opts.threads_per_shard;
            limits.memo_limit = opts.memo_limit;
            limits.allow_cache_save = true; // shard cache files
            serve_connection(ch, pool, limits);
        } catch (...) {
            code = 1;
        }
        ::_exit(code);
    }
    ::close(to_child[0]);
    ::close(to_parent[1]);
    w.pid = pid;
    w.stream_read = to_parent[0];
    w.job_write = to_child[1];
    w.ch.emplace(w.stream_read, w.job_write);
    reg.fds.push_back(w.stream_read);
    reg.fds.push_back(w.job_write);
}

/// Closes the worker's channel and deregisters its fds.  Deregister
/// first: a concurrent spawn must never hand its child a registered fd
/// number we have already closed (the number could be reused).
void release_channel(fd_registry& reg, proc_worker& w)
{
    {
        std::lock_guard<std::mutex> lock(reg.mutex);
        std::erase(reg.fds, w.stream_read);
        std::erase(reg.fds, w.job_write);
    }
    w.ch.reset(); // closes both fds
    w.stream_read = -1;
    w.job_write = -1;
}

/// One complete conversation with the worker's current child: submit
/// the shard's still-undelivered points, fold the stream until done.
/// Throws wire_error on any transport failure (the retryable class) and
/// plain error on a job rejection (not retryable — a respawn would be
/// rejected identically).
void converse(proc_worker& w, const flow& prototype, const dse::space& s,
              const shard_options& opts, merge_state& state)
{
    channel& ch = *w.ch;
    send_hello(ch);
    expect_hello(ch);
    // First attempt: the whole range, the same job a fault-free sweep
    // sends.  Respawns: only what the dead predecessor never delivered.
    const std::vector<std::size_t> pending = state.undelivered_in(w.range);
    std::vector<synthesis_constraints> points;
    points.reserve(pending.size());
    for (const std::size_t g : pending) points.push_back(s.at(g));
    job_request job = make_job(prototype, dse::list(std::move(points)));
    job.threads = opts.threads_per_shard;
    job.save_cache_path = w.cache_path;
    ch.send(frame_type::job, encode_job(job));
    while (const std::optional<channel::frame> f = ch.recv()) {
        if (f->type == frame_type::report) {
            const report_frame r = decode_report(f->payload);
            if (r.index >= pending.size())
                throw wire_error("protocol violation: report index " +
                                 std::to_string(r.index) + " outside the job");
            state.deliver(pending[static_cast<std::size_t>(r.index)],
                          metric_report(r.metrics));
            // Fault site: SIGKILL the worker after the nth report folded
            // across the sweep.  Parent-side on purpose: forked children
            // inherit the armed counters, so a child-side site would
            // re-fire inside every respawn and recovery could never
            // converge.
            if (fault_fire("shard.worker.kill")) ::kill(w.pid, SIGKILL);
            continue;
        }
        if (f->type == frame_type::front) continue; // folded globally
        if (f->type == frame_type::done) {
            const done_frame done = decode_done(f->payload);
            state.add_metric_served(done.metric_served);
            ch.send(frame_type::bye, "");
            return;
        }
        if (f->type == frame_type::reject)
            throw error("shard worker rejected its job: " +
                        decode_reject(f->payload).message);
        throw wire_error(std::string("protocol violation: unexpected ") +
                         frame_type_name(f->type) + " frame from a shard worker");
    }
    throw wire_error("shard worker closed its pipe mid-job");
}

/// Runs one shard to completion, respawning its worker on transport
/// failures up to opts.max_retries times with capped doubling backoff.
void supervise(proc_worker& w, fd_registry& reg, const flow& prototype,
               const dse::space& s, const shard_options& opts, merge_state& state,
               manifest_state& manifest)
{
    int backoff = std::max(1, opts.retry_backoff_ms);
    int attempts = 0;
    for (;;) {
        try {
            converse(w, prototype, s, opts, state);
        } catch (const wire_error&) {
            // The worker is gone or its stream is garbage: tear it down
            // (kill is a no-op on an already-dead child) and respawn,
            // unless the retry budget is spent.
            release_channel(reg, w);
            ::kill(w.pid, SIGKILL);
            int wstatus = 0;
            ::waitpid(w.pid, &wstatus, 0);
            w.pid = -1;
            if (attempts >= opts.max_retries) throw;
            ++attempts;
            state.count_retry();
            std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
            backoff = std::min(backoff * 2, std::max(1, opts.retry_backoff_cap_ms));
            spawn_worker(reg, opts, w);
            continue;
        }
        // Clean completion: reap.  Supervised sweeps (max_retries > 0)
        // tolerate an abnormal exit *after* the protocol completed: the
        // done frame proves every point was delivered and the cache
        // saved, so a kill landing between the last buffered frame and
        // process exit changes nothing the parent consumed.  Fail-fast
        // sweeps keep the strict check — there a nonzero exit after done
        // is a real defect, not a recoverable fault.
        release_channel(reg, w);
        int wstatus = 0;
        ::waitpid(w.pid, &wstatus, 0);
        w.pid = -1;
        if ((!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0) &&
            opts.max_retries == 0)
            throw wire_error("shard worker " + std::to_string(w.shard) +
                             " exited abnormally");
        manifest.shard_done(w.range, w.cache_path);
        return;
    }
}

void run_shards_processes(const flow& prototype, const dse::space& s,
                          const std::vector<index_range>& ranges,
                          const shard_options& opts, merge_state& state,
                          manifest_state& manifest)
{
    // A worker killed while the parent writes its job must cost EPIPE,
    // not the process.
    const sigpipe_guard no_sigpipe;

    // Fork every initial worker from this (still single-threaded)
    // process first; reader threads only start once all children exist.
    // Respawns later fork from reader threads — see spawn_worker().
    fd_registry reg;
    std::vector<proc_worker> workers;
    for (std::size_t i = 0; i < ranges.size(); ++i) {
        if (ranges[i].empty()) continue;
        proc_worker w;
        w.range = ranges[i];
        w.shard = static_cast<int>(i);
        if (!opts.cache_dir.empty())
            w.cache_path = shard_cache_path(opts.cache_dir, w.shard);
        workers.push_back(std::move(w));
    }
    for (proc_worker& w : workers) spawn_worker(reg, opts, w);

    // One supervisor thread per worker: submit the shard's job, fold
    // every streamed report into the global front as it arrives, and
    // respawn the worker if it dies mid-job.
    std::vector<std::thread> readers;
    readers.reserve(workers.size());
    for (proc_worker& w : workers) {
        readers.emplace_back([&w, &reg, &prototype, &s, &opts, &state, &manifest] {
            try {
                supervise(w, reg, prototype, s, opts, state, manifest);
            } catch (...) {
                w.failure = std::current_exception();
                if (w.ch) { // converse threw a non-retryable error
                    release_channel(reg, w);
                    ::kill(w.pid, SIGKILL);
                    int wstatus = 0;
                    ::waitpid(w.pid, &wstatus, 0);
                    w.pid = -1;
                }
            }
        });
    }
    for (std::thread& t : readers) t.join();

    // Every child was reaped by its supervisor; report the first
    // failure, or collect the cache files of a fully-clean sweep.
    for (proc_worker& w : workers)
        if (w.failure) std::rethrow_exception(w.failure);
    for (const proc_worker& w : workers)
        if (!w.cache_path.empty()) state.summary.cache_files.push_back(w.cache_path);
}

} // namespace

shard_summary explore_sharded(const flow& prototype, const dse::space& s,
                              const shard_options& opts, const dse::sink& sk)
{
    check(opts.shards >= 1, "shard count must be >= 1");
    check(!s.adaptive(),
          "adaptive (refine) spaces cannot be sharded: subdivision decisions "
          "span the whole lattice -- evaluate them in one session");
    check(!(opts.guided && opts.processes),
          "guided sweeps cannot use forked shard workers: wire jobs are "
          "eager -- use in-process (threads) shards");
    check(opts.max_retries >= 0, "shard retry count must be >= 0");
    check(opts.retry_backoff_ms >= 0 && opts.retry_backoff_cap_ms >= 0,
          "shard retry backoff must be >= 0");
    check(opts.manifest_path.empty() || !opts.cache_dir.empty(),
          "a checkpoint manifest needs a cache directory: resume replays "
          "fronts from the per-shard cache files");
    const auto started = std::chrono::steady_clock::now();

    merge_state state;
    state.sk = &sk;
    state.summary.space_size = s.size();
    state.delivered.assign(s.size(), 0);

    manifest_state manifest;
    manifest.path = opts.manifest_path;
    if (!manifest.path.empty()) {
        manifest.m.problem_hash = manifest_problem_hash(prototype, s);
        manifest.m.space_size = s.size();
        // Written before anything runs: a sweep killed before its first
        // shard completes still leaves a valid (empty) manifest behind.
        save_manifest(manifest.path, manifest.m);
    }

    const std::vector<index_range> ranges = split(s.size(), opts.shards);
    if (opts.processes)
        run_shards_processes(prototype, s, ranges, opts, state, manifest);
    else
        run_shards_threads(prototype, s, ranges, opts, state, manifest);

    state.summary.front = state.front.front();
    state.summary.wall_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - started)
                                .count();
    return state.summary;
}

} // namespace phls::serve
