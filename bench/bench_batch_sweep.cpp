// Batch sweep scaling and cache reuse: flow::run_batch over a
// Figure-2-style power grid at several worker-pool sizes, cached vs
// uncached, plus a 2-D (T, Pmax) grid with duplicate points exercising
// the two-level explore_cache.
//
// Checks and gates:
//   * determinism -- reports are byte-identical for every thread count
//     AND with the explore_cache disabled (each point is claimed by
//     exactly one worker and written to its own slot, synthesis is
//     deterministic, and every cached value is a pure function of the
//     problem);
//   * cache reuse -- a >= 24-point sweep over one (graph, lib) serves
//     reachability, prospect tables and initial windows from the shared
//     explore_cache (hit counter printed per benchmark, and required to
//     be positive);
//   * two-level cache -- a 120-point 2-D grid with duplicates must take
//     committed-window (level 1) and whole-report (level 2) hits, beat
//     the initial-windows-only (PR 2) cache configuration on wall time,
//     and stay byte-identical across cache levels and thread counts;
//   * incremental Pareto -- the front streamed by run_batch_pareto must
//     equal the front computed post-hoc from the final vector;
//   * scaling -- wall-clock time drops as workers are added.  On a host
//     with >= 4 hardware threads the 4-worker sweep must beat the
//     uncached sequential reference by >= 2x (hard gate); on smaller
//     hosts the speedup is reported but not gated (a single-core host is
//     ~1x by construction).
#include <chrono>
#include <functional>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "cdfg/benchmarks.h"
#include "flow/explore_cache.h"
#include "flow/flow.h"
#include "flow/pareto_stream.h"
#include "support/strings.h"
#include "support/table.h"

namespace {

double run_ms(const std::function<void()>& fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
        .count();
}

bool identical(const std::vector<phls::flow_report>& a,
               const std::vector<phls::flow_report>& b)
{
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].to_string() != b[i].to_string()) return false;
    return true;
}

} // namespace

int main()
{
    using namespace phls;
    const module_library lib = table1_library();
    const unsigned cores = std::thread::hardware_concurrency();

    std::cout << "=== flow::run_batch scaling on a 24-point power grid ===\n";
    std::cout << "hardware threads: " << cores << "\n\n";

    bool all_identical = true;
    bool all_hit = true;
    double speedup_at_4 = 0.0;
    for (const auto& [bench, T] : {std::pair<const char*, int>{"hal", 17},
                                   {"cosine", 15}, {"elliptic", 22}}) {
        const graph g = benchmark_by_name(bench);
        const flow f = flow::on(g).with_library(lib).latency(T);
        std::vector<synthesis_constraints> grid;
        for (double cap : f.power_grid(24)) grid.push_back({T, cap});

        // Uncached sequential reference (the pre-cache engine behaviour).
        std::vector<flow_report> reference;
        const flow uncached = flow::on(g).with_library(lib).latency(T).caching(false);
        const double ms_uncached = run_ms([&] { reference = uncached.run_batch(grid, 1); });

        // Cached sequential run on an explicit shared cache: must be
        // byte-identical, with every point past the first hitting it.
        const std::shared_ptr<explore_cache> cache = f.build_cache();
        const flow cached = flow::on(g).with_library(lib).latency(T).reuse(cache);
        std::vector<flow_report> with_cache;
        const double ms_cached = run_ms([&] { with_cache = cached.run_batch(grid, 1); });
        const bool cache_identical = identical(with_cache, reference);
        all_identical = all_identical && cache_identical;
        const explore_cache::counters cc = cache->stats();
        all_hit = all_hit && cc.hits > 0;

        ascii_table t({"threads", "cache", "wall (ms)", "per point (ms)", "speedup",
                       "identical"});
        t.add_row({"1", "off", strf("%.1f", ms_uncached),
                   strf("%.2f", ms_uncached / grid.size()), "1.00x", "ref"});
        t.add_row({"1", "on", strf("%.1f", ms_cached),
                   strf("%.2f", ms_cached / grid.size()),
                   strf("%.2fx", ms_uncached / ms_cached),
                   cache_identical ? "yes" : "NO"});
        for (int threads : {2, 4, 8}) {
            std::vector<flow_report> reports;
            const double ms = run_ms([&] { reports = f.run_batch(grid, threads); });
            const bool same = identical(reports, reference);
            all_identical = all_identical && same;
            if (threads == 4 && bench == std::string("elliptic"))
                speedup_at_4 = ms_uncached / ms;
            t.add_row({std::to_string(threads), "on", strf("%.1f", ms),
                       strf("%.2f", ms / grid.size()),
                       strf("%.2fx", ms_uncached / ms), same ? "yes" : "NO"});
        }
        std::cout << "--- " << bench << " (T=" << T << ", "
                  << grid.size() << " points) ---\n";
        t.print(std::cout);
        int feasible = 0;
        for (const flow_report& r : reference) feasible += r.st.ok() ? 1 : 0;
        std::cout << feasible << "/" << reference.size() << " points feasible; "
                  << strf("explore_cache: %ld hits, %ld misses; committed windows: "
                          "%ld hits, %ld misses; report memo: %ld hits, %ld misses\n\n",
                          cc.hits, cc.misses, cc.committed_hits, cc.committed_misses,
                          cc.report_hits, cc.report_misses);
    }

    // ---- two-level cache on a duplicate-heavy 2-D (T, Pmax) grid ----
    //
    // Each (T, cap) point appears twice, as a dense DSE grid or a
    // repeated CLI sweep would produce: the first evaluation fills the
    // committed-window memo (level 1), the duplicate is served whole
    // from the report memo (level 2).  A cache restricted to the initial
    // windows only (the PR 2 configuration) is the ablation baseline.
    std::cout << "=== two-level cache on a 2-D (T, Pmax) grid with duplicates ===\n";
    const graph g2 = make_hal();
    const flow base2 = flow::on(g2).with_library(lib).latency(17);
    std::vector<synthesis_constraints> grid2;
    for (int T : {17, 19, 21})
        for (double cap : base2.power_grid(20)) grid2.push_back({T, cap});
    const std::size_t distinct = grid2.size();
    const std::vector<synthesis_constraints> once = grid2; // self-insert is UB
    grid2.insert(grid2.end(), once.begin(), once.end());   // exact duplicates
    std::cout << grid2.size() << " points (" << distinct << " distinct)\n\n";

    std::vector<flow_report> ref2;
    const double ms2_off = run_ms([&] {
        ref2 = flow::on(g2).with_library(lib).caching(false).run_batch(grid2, 1);
    });

    const std::shared_ptr<explore_cache> cache_l0 = base2.build_cache();
    cache_l0->set_committed_memo(false);
    cache_l0->set_report_memo(false);
    std::vector<flow_report> rep_l0;
    const double ms2_l0 = run_ms([&] {
        rep_l0 = flow::on(g2).with_library(lib).reuse(cache_l0).run_batch(grid2, 1);
    });

    const std::shared_ptr<explore_cache> cache_l2 = base2.build_cache();
    std::vector<flow_report> rep_l2;
    const double ms2_l2 = run_ms([&] {
        rep_l2 = flow::on(g2).with_library(lib).reuse(cache_l2).run_batch(grid2, 1);
    });
    const explore_cache::counters c2 = cache_l2->stats();

    bool grid_identical = identical(ref2, rep_l0) && identical(ref2, rep_l2);
    for (int threads : {2, 8}) {
        const std::vector<flow_report> rep =
            flow::on(g2).with_library(lib).run_batch(grid2, threads);
        grid_identical = grid_identical && identical(ref2, rep);
    }

    // The streamed incremental front must equal the post-hoc one.
    std::size_t delivered = 0;
    std::size_t front_changes = 0;
    std::vector<front_point> streamed_front;
    const std::vector<flow_report> rep_pareto =
        flow::on(g2).with_library(lib).run_batch_pareto(
            grid2,
            [&](std::size_t, const flow_report&, const pareto_stream& front,
                bool changed) {
                ++delivered;
                front_changes += changed ? 1 : 0;
                streamed_front = front.front();
            },
            2);
    const std::vector<front_point> posthoc_front = pareto_points(rep_pareto);
    const bool pareto_matches = streamed_front == posthoc_front &&
                                delivered == grid2.size() &&
                                identical(rep_pareto, ref2);

    ascii_table t2({"cache levels", "wall (ms)", "speedup", "identical"});
    t2.add_row({"off", strf("%.1f", ms2_off), "1.00x", "ref"});
    t2.add_row({"initial windows (PR 2)", strf("%.1f", ms2_l0),
                strf("%.2fx", ms2_off / ms2_l0), identical(ref2, rep_l0) ? "yes" : "NO"});
    t2.add_row({"two-level", strf("%.1f", ms2_l2), strf("%.2fx", ms2_off / ms2_l2),
                identical(ref2, rep_l2) ? "yes" : "NO"});
    t2.print(std::cout);
    std::cout << strf("two-level counters: invariants %ld hits / %ld misses, "
                      "committed windows %ld hits / %ld misses, report memo %ld hits "
                      "/ %ld misses\n",
                      c2.hits, c2.misses, c2.committed_hits, c2.committed_misses,
                      c2.report_hits, c2.report_misses);
    std::cout << strf("incremental Pareto front: %zu points, %zu changes over %zu "
                      "deliveries\n\n",
                      streamed_front.size(), front_changes, delivered);

    // ------------------------------------------------------------ gates
    //
    // The two wall-clock gates are deliberately hard (per ROADMAP) but
    // structurally safe: the duplicate grid hands the two-level cache
    // half its points for free (measured ~1.6x over the level-0 config,
    // far above timing noise), and 24 independent points on >= 4 cores
    // clear 2x with a similar margin.
    const bool committed_hit = c2.committed_hits > 0;
    const bool report_hit = c2.report_hits > 0;
    const bool beats_l0 = ms2_l2 < ms2_l0;
    const bool hard_scaling = cores >= 4;
    const bool scaling_ok = !hard_scaling || speedup_at_4 >= 2.0;

    std::cout << "reports identical across thread counts and caching modes: "
              << (all_identical && grid_identical ? "YES" : "NO") << '\n';
    std::cout << "cache hits taken on every benchmark: " << (all_hit ? "YES" : "NO")
              << '\n';
    std::cout << "committed-window hits taken on the 2-D grid: "
              << (committed_hit ? "YES" : "NO") << '\n';
    std::cout << "report-memo hits taken on the 2-D grid: "
              << (report_hit ? "YES" : "NO") << '\n';
    std::cout << "two-level cache beats the initial-windows-only cache: "
              << (beats_l0 ? "YES" : "NO") << '\n';
    std::cout << "incremental Pareto front equals the post-hoc front: "
              << (pareto_matches ? "YES" : "NO") << '\n';
    std::cout << strf("elliptic speedup at 4 threads: %.2fx (gate %s)\n", speedup_at_4,
                      hard_scaling ? ">= 2x, hard" : "soft: fewer than 4 cores");
    return all_identical && grid_identical && all_hit && committed_hit && report_hit &&
                   beats_l0 && pareto_matches && scaling_ok
               ? 0
               : 1;
}
