// Batch sweep scaling and cache reuse: flow::run_batch over a
// Figure-2-style power grid at several worker-pool sizes, cached vs
// uncached.
//
// Checks three properties of the batch executor:
//   * determinism -- reports are byte-identical for every thread count
//     AND with the explore_cache disabled (each point is claimed by
//     exactly one worker and written to its own slot, synthesis is
//     deterministic, and every cached value is a pure function of the
//     problem);
//   * cache reuse -- a >= 24-point sweep over one (graph, lib) serves
//     reachability, prospect tables and initial windows from the shared
//     explore_cache (hit counter printed per benchmark, and required to
//     be positive);
//   * scaling -- wall-clock time drops as workers are added, up to the
//     machine's core count (points are independent, so the sweep is
//     embarrassingly parallel; on a single-core host the speedup is ~1x
//     by construction and only determinism is asserted).
#include <chrono>
#include <functional>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "cdfg/benchmarks.h"
#include "flow/explore_cache.h"
#include "flow/flow.h"
#include "support/strings.h"
#include "support/table.h"

namespace {

double run_ms(const std::function<void()>& fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int main()
{
    using namespace phls;
    const module_library lib = table1_library();

    std::cout << "=== flow::run_batch scaling on a 24-point power grid ===\n";
    std::cout << "hardware threads: " << std::thread::hardware_concurrency() << "\n\n";

    bool all_identical = true;
    bool all_hit = true;
    double speedup_at_4 = 0.0;
    for (const auto& [bench, T] : {std::pair<const char*, int>{"hal", 17},
                                   {"cosine", 15}, {"elliptic", 22}}) {
        const graph g = benchmark_by_name(bench);
        const flow f = flow::on(g).with_library(lib).latency(T);
        std::vector<synthesis_constraints> grid;
        for (double cap : f.power_grid(24)) grid.push_back({T, cap});

        // Uncached sequential reference (the pre-cache engine behaviour).
        std::vector<flow_report> reference;
        const flow uncached = flow::on(g).with_library(lib).latency(T).caching(false);
        const double ms_uncached = run_ms([&] { reference = uncached.run_batch(grid, 1); });

        // Cached sequential run on an explicit shared cache: must be
        // byte-identical, with every point past the first hitting it.
        const std::shared_ptr<explore_cache> cache = f.build_cache();
        const flow cached = flow::on(g).with_library(lib).latency(T).reuse(cache);
        std::vector<flow_report> with_cache;
        const double ms_cached = run_ms([&] { with_cache = cached.run_batch(grid, 1); });
        bool cache_identical = with_cache.size() == reference.size();
        for (std::size_t i = 0; cache_identical && i < with_cache.size(); ++i)
            cache_identical = with_cache[i].to_string() == reference[i].to_string();
        all_identical = all_identical && cache_identical;
        const explore_cache::counters cc = cache->stats();
        all_hit = all_hit && cc.hits > 0;

        ascii_table t({"threads", "cache", "wall (ms)", "per point (ms)", "speedup",
                       "identical"});
        t.add_row({"1", "off", strf("%.1f", ms_uncached),
                   strf("%.2f", ms_uncached / grid.size()), "1.00x", "ref"});
        t.add_row({"1", "on", strf("%.1f", ms_cached),
                   strf("%.2f", ms_cached / grid.size()),
                   strf("%.2fx", ms_uncached / ms_cached),
                   cache_identical ? "yes" : "NO"});
        for (int threads : {2, 4, 8}) {
            std::vector<flow_report> reports;
            const double ms = run_ms([&] { reports = f.run_batch(grid, threads); });
            bool identical = reports.size() == reference.size();
            for (std::size_t i = 0; identical && i < reports.size(); ++i)
                identical = reports[i].to_string() == reference[i].to_string();
            all_identical = all_identical && identical;
            if (threads == 4 && bench == std::string("elliptic"))
                speedup_at_4 = ms_uncached / ms;
            t.add_row({std::to_string(threads), "on", strf("%.1f", ms),
                       strf("%.2f", ms / grid.size()),
                       strf("%.2fx", ms_uncached / ms), identical ? "yes" : "NO"});
        }
        std::cout << "--- " << bench << " (T=" << T << ", "
                  << grid.size() << " points) ---\n";
        t.print(std::cout);
        int feasible = 0;
        for (const flow_report& r : reference) feasible += r.st.ok() ? 1 : 0;
        std::cout << feasible << "/" << reference.size() << " points feasible; "
                  << strf("explore_cache: %ld hits, %ld misses\n\n", cc.hits, cc.misses);
    }

    std::cout << "reports identical across thread counts and caching modes: "
              << (all_identical ? "YES" : "NO") << '\n';
    std::cout << "cache hits taken on every benchmark: " << (all_hit ? "YES" : "NO")
              << '\n';
    std::cout << strf("elliptic speedup at 4 threads: %.2fx\n", speedup_at_4);
    return all_identical && all_hit ? 0 : 1;
}
