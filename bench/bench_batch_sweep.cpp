// Batch sweep scaling: flow::run_batch over a Figure-2-style power grid
// at several worker-pool sizes.
//
// Checks two properties of the batch executor:
//   * determinism -- reports are byte-identical for every thread count
//     (each point is claimed by exactly one worker and written to its
//     own slot, and synthesis itself is deterministic);
//   * scaling -- wall-clock time drops as workers are added, up to the
//     machine's core count (points are independent, so the sweep is
//     embarrassingly parallel; on a single-core host the speedup is ~1x
//     by construction and only determinism is asserted).
#include <chrono>
#include <functional>
#include <iostream>
#include <thread>
#include <vector>

#include "cdfg/benchmarks.h"
#include "flow/flow.h"
#include "support/strings.h"
#include "support/table.h"

namespace {

double run_ms(const std::function<void()>& fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int main()
{
    using namespace phls;
    const module_library lib = table1_library();

    std::cout << "=== flow::run_batch scaling on a 24-point power grid ===\n";
    std::cout << "hardware threads: " << std::thread::hardware_concurrency() << "\n\n";

    bool all_identical = true;
    double speedup_at_4 = 0.0;
    for (const auto& [bench, T] : {std::pair<const char*, int>{"hal", 17},
                                   {"cosine", 15}, {"elliptic", 22}}) {
        const graph g = benchmark_by_name(bench);
        const flow f = flow::on(g).with_library(lib).latency(T);
        std::vector<synthesis_constraints> grid;
        for (double cap : f.power_grid(24)) grid.push_back({T, cap});

        // Reference run, sequential.
        std::vector<flow_report> reference;
        const double ms1 = run_ms([&] { reference = f.run_batch(grid, 1); });

        ascii_table t({"threads", "wall (ms)", "speedup", "identical"});
        t.add_row({"1", strf("%.1f", ms1), "1.00x", "ref"});
        for (int threads : {2, 4, 8}) {
            std::vector<flow_report> reports;
            const double ms = run_ms([&] { reports = f.run_batch(grid, threads); });
            bool identical = reports.size() == reference.size();
            for (std::size_t i = 0; identical && i < reports.size(); ++i)
                identical = reports[i].to_string() == reference[i].to_string();
            all_identical = all_identical && identical;
            if (threads == 4 && bench == std::string("elliptic"))
                speedup_at_4 = ms1 / ms;
            t.add_row({std::to_string(threads), strf("%.1f", ms),
                       strf("%.2fx", ms1 / ms), identical ? "yes" : "NO"});
        }
        std::cout << "--- " << bench << " (T=" << T << ", "
                  << grid.size() << " points) ---\n";
        t.print(std::cout);
        int feasible = 0;
        for (const flow_report& r : reference) feasible += r.st.ok() ? 1 : 0;
        std::cout << feasible << "/" << reference.size() << " points feasible\n\n";
    }

    std::cout << "reports identical across all thread counts: "
              << (all_identical ? "YES" : "NO") << '\n';
    std::cout << strf("elliptic speedup at 4 threads: %.2fx\n", speedup_at_4);
    return all_identical ? 0 : 1;
}
