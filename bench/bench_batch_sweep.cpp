// Batch sweep scaling and cache reuse: flow::run_batch over a
// Figure-2-style power grid at several worker-pool sizes, cached vs
// uncached, plus a 2-D (T, Pmax) grid with duplicate points exercising
// the two-level explore_cache.
//
// Checks and gates:
//   * determinism -- reports are byte-identical for every thread count
//     AND with the explore_cache disabled (each point is claimed by
//     exactly one worker and written to its own slot, synthesis is
//     deterministic, and every cached value is a pure function of the
//     problem);
//   * cache reuse -- a >= 24-point sweep over one (graph, lib) serves
//     reachability, prospect tables and initial windows from the shared
//     explore_cache (hit counter printed per benchmark, and required to
//     be positive);
//   * two-level cache -- a 120-point 2-D grid with duplicates must take
//     committed-window (level 1) and whole-report (level 2) hits, beat
//     the initial-windows-only (PR 2) cache configuration on wall time,
//     and stay byte-identical across cache levels and thread counts;
//   * incremental Pareto -- the front streamed by run_batch_pareto must
//     equal the front computed post-hoc from the final vector;
//   * scaling -- wall-clock time drops as workers are added.  On a host
//     with >= 4 hardware threads the 4-worker sweep must beat the
//     uncached sequential reference by >= 2x (hard gate); on smaller
//     hosts the speedup is reported but not gated (a single-core host is
//     ~1x by construction);
//   * dse::session -- a cold, unbounded session explore over the same
//     duplicate-heavy grid is byte-identical to run_batch; replaying the
//     streamed front *deltas* reconstructs the final front; a session
//     warm-started from a save()d cache file answers every point at the
//     metric level, matches the reference metrics and front, and beats
//     the cold wall time; a memo-bounded session never holds more full
//     reports than its capacity while still serving evicted duplicates
//     as metric records; dse::refine evaluates a subset of the lattice
//     yet lands on the same final front as the eager grid;
//   * guided exploration -- explore_guided over a 10^4-point (T, Pmax)
//     plane must land on the EXACT eager front while evaluating at most
//     25% of the plane, its counters must partition the space, and the
//     guided walk must beat the eager walk on wall time.
//
// The machine-readable summary (points/sec, per-level hit rates, warm
// vs cold wall time, gate results) is written to BENCH_batch_sweep.json
// so the perf trajectory is comparable across PRs.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "cdfg/benchmarks.h"
#include "dse/session.h"
#include "flow/explore_cache.h"
#include "flow/flow.h"
#include "flow/pareto_stream.h"
#include "support/strings.h"
#include "support/table.h"

namespace {

double run_ms(const std::function<void()>& fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
        .count();
}

bool identical(const std::vector<phls::flow_report>& a,
               const std::vector<phls::flow_report>& b)
{
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].to_string() != b[i].to_string()) return false;
    return true;
}

/// Metric-level equality: what a warm-started session guarantees (the
/// datapath is not persisted, the outcome and achieved metrics are).
bool metric_identical(const phls::flow_report& a, const phls::flow_report& b)
{
    return a.st.code == b.st.code && a.st.message == b.st.message &&
           a.constraints.latency == b.constraints.latency &&
           a.constraints.max_power == b.constraints.max_power &&
           a.has_design == b.has_design && a.area == b.area && a.peak == b.peak &&
           a.latency == b.latency && a.has_lifetime == b.has_lifetime &&
           a.lifetime_seconds == b.lifetime_seconds;
}

} // namespace

int main()
{
    using namespace phls;
    const module_library lib = table1_library();
    const unsigned cores = std::thread::hardware_concurrency();

    std::cout << "=== flow::run_batch scaling on a 24-point power grid ===\n";
    std::cout << "hardware threads: " << cores << "\n\n";

    bool all_identical = true;
    bool all_hit = true;
    double speedup_at_4 = 0.0;
    for (const auto& [bench, T] : {std::pair<const char*, int>{"hal", 17},
                                   {"cosine", 15}, {"elliptic", 22}}) {
        const graph g = benchmark_by_name(bench);
        const flow f = flow::on(g).with_library(lib).latency(T);
        std::vector<synthesis_constraints> grid;
        for (double cap : f.power_grid(24)) grid.push_back({T, cap});

        // Uncached sequential reference (the pre-cache engine behaviour).
        std::vector<flow_report> reference;
        const flow uncached = flow::on(g).with_library(lib).latency(T).caching(false);
        const double ms_uncached = run_ms([&] { reference = uncached.run_batch(grid, 1); });

        // Cached sequential run on an explicit shared cache: must be
        // byte-identical, with every point past the first hitting it.
        const std::shared_ptr<explore_cache> cache = f.build_cache();
        const flow cached = flow::on(g).with_library(lib).latency(T).reuse(cache);
        std::vector<flow_report> with_cache;
        const double ms_cached = run_ms([&] { with_cache = cached.run_batch(grid, 1); });
        const bool cache_identical = identical(with_cache, reference);
        all_identical = all_identical && cache_identical;
        const explore_cache::counters cc = cache->stats();
        all_hit = all_hit && cc.hits > 0;

        ascii_table t({"threads", "cache", "wall (ms)", "per point (ms)", "speedup",
                       "identical"});
        t.add_row({"1", "off", strf("%.1f", ms_uncached),
                   strf("%.2f", ms_uncached / grid.size()), "1.00x", "ref"});
        t.add_row({"1", "on", strf("%.1f", ms_cached),
                   strf("%.2f", ms_cached / grid.size()),
                   strf("%.2fx", ms_uncached / ms_cached),
                   cache_identical ? "yes" : "NO"});
        for (int threads : {2, 4, 8}) {
            std::vector<flow_report> reports;
            const double ms = run_ms([&] { reports = f.run_batch(grid, threads); });
            const bool same = identical(reports, reference);
            all_identical = all_identical && same;
            if (threads == 4 && bench == std::string("elliptic"))
                speedup_at_4 = ms_uncached / ms;
            t.add_row({std::to_string(threads), "on", strf("%.1f", ms),
                       strf("%.2f", ms / grid.size()),
                       strf("%.2fx", ms_uncached / ms), same ? "yes" : "NO"});
        }
        std::cout << "--- " << bench << " (T=" << T << ", "
                  << grid.size() << " points) ---\n";
        t.print(std::cout);
        int feasible = 0;
        for (const flow_report& r : reference) feasible += r.st.ok() ? 1 : 0;
        std::cout << feasible << "/" << reference.size() << " points feasible; "
                  << strf("explore_cache: %ld hits, %ld misses; committed windows: "
                          "%ld hits, %ld misses; report memo: %ld hits, %ld misses\n\n",
                          cc.hits, cc.misses, cc.committed_hits, cc.committed_misses,
                          cc.report_hits, cc.report_misses);
    }

    // ---- two-level cache on a duplicate-heavy 2-D (T, Pmax) grid ----
    //
    // Each (T, cap) point appears twice, as a dense DSE grid or a
    // repeated CLI sweep would produce: the first evaluation fills the
    // committed-window memo (level 1), the duplicate is served whole
    // from the report memo (level 2).  A cache restricted to the initial
    // windows only (the PR 2 configuration) is the ablation baseline.
    std::cout << "=== two-level cache on a 2-D (T, Pmax) grid with duplicates ===\n";
    const graph g2 = make_hal();
    const flow base2 = flow::on(g2).with_library(lib).latency(17);
    const std::vector<int> lat2 = {17, 19, 21};
    const std::vector<double> caps20 = base2.power_grid(20);
    std::vector<synthesis_constraints> grid2;
    for (int T : lat2)
        for (double cap : caps20) grid2.push_back({T, cap});
    const std::size_t distinct = grid2.size();
    const std::vector<synthesis_constraints> once = grid2; // self-insert is UB
    grid2.insert(grid2.end(), once.begin(), once.end());   // exact duplicates
    std::cout << grid2.size() << " points (" << distinct << " distinct)\n\n";

    std::vector<flow_report> ref2;
    const double ms2_off = run_ms([&] {
        ref2 = flow::on(g2).with_library(lib).caching(false).run_batch(grid2, 1);
    });

    const std::shared_ptr<explore_cache> cache_l0 = base2.build_cache();
    cache_l0->set_committed_memo(false);
    cache_l0->set_report_memo(false);
    std::vector<flow_report> rep_l0;
    const double ms2_l0 = run_ms([&] {
        rep_l0 = flow::on(g2).with_library(lib).reuse(cache_l0).run_batch(grid2, 1);
    });

    const std::shared_ptr<explore_cache> cache_l2 = base2.build_cache();
    std::vector<flow_report> rep_l2;
    const double ms2_l2 = run_ms([&] {
        rep_l2 = flow::on(g2).with_library(lib).reuse(cache_l2).run_batch(grid2, 1);
    });
    const explore_cache::counters c2 = cache_l2->stats();

    bool grid_identical = identical(ref2, rep_l0) && identical(ref2, rep_l2);
    for (int threads : {2, 8}) {
        const std::vector<flow_report> rep =
            flow::on(g2).with_library(lib).run_batch(grid2, threads);
        grid_identical = grid_identical && identical(ref2, rep);
    }

    // The streamed incremental front must equal the post-hoc one.
    std::size_t delivered = 0;
    std::size_t front_changes = 0;
    std::vector<front_point> streamed_front;
    const std::vector<flow_report> rep_pareto =
        flow::on(g2).with_library(lib).run_batch_pareto(
            grid2,
            [&](std::size_t, const flow_report&, const pareto_stream& front,
                bool changed) {
                ++delivered;
                front_changes += changed ? 1 : 0;
                streamed_front = front.front();
            },
            2);
    const std::vector<front_point> posthoc_front = pareto_points(rep_pareto);
    const bool pareto_matches = streamed_front == posthoc_front &&
                                delivered == grid2.size() &&
                                identical(rep_pareto, ref2);

    ascii_table t2({"cache levels", "wall (ms)", "speedup", "identical"});
    t2.add_row({"off", strf("%.1f", ms2_off), "1.00x", "ref"});
    t2.add_row({"initial windows (PR 2)", strf("%.1f", ms2_l0),
                strf("%.2fx", ms2_off / ms2_l0), identical(ref2, rep_l0) ? "yes" : "NO"});
    t2.add_row({"two-level", strf("%.1f", ms2_l2), strf("%.2fx", ms2_off / ms2_l2),
                identical(ref2, rep_l2) ? "yes" : "NO"});
    t2.print(std::cout);
    std::cout << strf("two-level counters: invariants %ld hits / %ld misses, "
                      "committed windows %ld hits / %ld misses, report memo %ld hits "
                      "/ %ld misses\n",
                      c2.hits, c2.misses, c2.committed_hits, c2.committed_misses,
                      c2.report_hits, c2.report_misses);
    std::cout << strf("incremental Pareto front: %zu points, %zu changes over %zu "
                      "deliveries\n\n",
                      streamed_front.size(), front_changes, delivered);

    // ---- dse::session: delta streaming, persistence, bounded memo ----
    //
    // The session is the new exploration surface (run_batch* remain thin
    // wrappers over the same executor).  Cold + unbounded it must be
    // byte-identical to run_batch; its persisted cache file must make a
    // second process-equivalent run answer every point at the metric
    // level, match the reference metrics and front, and beat the cold
    // wall time; a bounded memo must respect its capacity while evicted
    // duplicates still answer as metric records; refine must land on the
    // eager grid's front while evaluating fewer lattice points.
    std::cout << "=== dse::session on the duplicate-heavy grid ===\n";
    const char* cache_file = "bench_batch_sweep.phlscache";
    std::remove(cache_file);

    dse::session cold(flow::on(g2).with_library(lib));
    std::vector<flow_report> ses_reports(grid2.size());
    std::vector<front_delta> deltas;
    dse::sink cold_sink;
    cold_sink.on_result = [&](std::size_t i, const flow_report& r) {
        ses_reports[i] = r;
    };
    cold_sink.on_front = [&](const front_delta& d) { deltas.push_back(d); };
    dse::explore_summary cold_sum;
    const double ms_cold = run_ms(
        [&] { cold_sum = cold.explore(dse::list(grid2), cold_sink, 1); });
    const bool session_identical = identical(ses_reports, ref2);
    cold.save(cache_file);

    // Replaying the streamed deltas must reconstruct the final front.
    std::vector<front_point> replay;
    for (const front_delta& d : deltas) {
        for (const front_point& p : d.left) std::erase(replay, p);
        for (const front_point& p : d.entered) replay.push_back(p);
    }
    std::sort(replay.begin(), replay.end(), [](const front_point& a, const front_point& b) {
        if (a.peak != b.peak) return a.peak < b.peak;
        if (a.area != b.area) return a.area < b.area;
        return a.index < b.index;
    });
    const bool deltas_ok =
        replay == cold_sum.front && cold_sum.front == pareto_points(ref2);

    dse::session warm(flow::on(g2).with_library(lib));
    warm.load(cache_file);
    std::vector<flow_report> warm_reports(grid2.size());
    dse::sink warm_sink;
    warm_sink.on_result = [&](std::size_t i, const flow_report& r) {
        warm_reports[i] = r;
    };
    dse::explore_summary warm_sum;
    const double ms_warm = run_ms(
        [&] { warm_sum = warm.explore(dse::list(grid2), warm_sink, 1); });
    bool warm_matches = warm_sum.front == cold_sum.front &&
                        warm_sum.metric_served == grid2.size();
    for (std::size_t i = 0; i < grid2.size(); ++i)
        warm_matches = warm_matches && metric_identical(warm_reports[i], ref2[i]);
    const bool warm_faster = ms_warm < ms_cold;
    std::remove(cache_file);

    // A small chunk puts the duplicate half of the grid in later chunks
    // than the originals, so the scan actually meets evicted entries and
    // the metric fallback (not just run_point's in-batch full hits).
    constexpr std::size_t memo_limit = 16;
    dse::session bounded(flow::on(g2).with_library(lib),
                         {.memo_limit = memo_limit, .chunk = 30});
    std::size_t max_full = 0;
    std::vector<flow_report> bounded_reports(grid2.size());
    dse::sink bounded_sink;
    bounded_sink.on_result = [&](std::size_t i, const flow_report& r) {
        bounded_reports[i] = r;
        max_full = std::max(max_full, bounded.cache()->report_full_size());
    };
    dse::explore_summary bounded_sum;
    const double ms_bounded = run_ms(
        [&] { bounded_sum = bounded.explore(dse::list(grid2), bounded_sink, 1); });
    bool bounded_ok = max_full <= memo_limit &&
                      bounded.cache()->report_full_size() <= memo_limit &&
                      bounded_sum.metric_served > 0;
    for (std::size_t i = 0; i < grid2.size(); ++i)
        bounded_ok = bounded_ok && metric_identical(bounded_reports[i], ref2[i]);

    dse::session eager_session(flow::on(g2).with_library(lib));
    dse::explore_summary eager_sum;
    const double ms_eager = run_ms(
        [&] { eager_sum = eager_session.explore(dse::cross(lat2, caps20), {}, 1); });
    dse::session refine_session(flow::on(g2).with_library(lib));
    dse::explore_summary refine_sum;
    const double ms_refine = run_ms(
        [&] { refine_sum = refine_session.explore(dse::refine(lat2, caps20), {}, 1); });
    const bool refine_ok = refine_sum.front == eager_sum.front &&
                           refine_sum.evaluated <= eager_sum.evaluated;

    const explore_cache::counters ccold = cold.cache()->stats();
    ascii_table t3({"session run", "wall (ms)", "points", "points/sec"});
    const auto pps = [](std::size_t n, double ms) {
        return ms > 0.0 ? strf("%.0f", 1000.0 * static_cast<double>(n) / ms) : "-";
    };
    t3.add_row({"cold (unbounded)", strf("%.1f", ms_cold),
                std::to_string(cold_sum.evaluated), pps(cold_sum.evaluated, ms_cold)});
    t3.add_row({"warm (from cache file)", strf("%.1f", ms_warm),
                std::to_string(warm_sum.evaluated), pps(warm_sum.evaluated, ms_warm)});
    t3.add_row({strf("bounded (memo %zu)", memo_limit), strf("%.1f", ms_bounded),
                std::to_string(bounded_sum.evaluated),
                pps(bounded_sum.evaluated, ms_bounded)});
    t3.add_row({"eager grid", strf("%.1f", ms_eager),
                std::to_string(eager_sum.evaluated), pps(eager_sum.evaluated, ms_eager)});
    t3.add_row({"refine", strf("%.1f", ms_refine), std::to_string(refine_sum.evaluated),
                pps(refine_sum.evaluated, ms_refine)});
    t3.print(std::cout);
    std::cout << strf("warm speedup vs cold: %.1fx; refine evaluated %zu of %zu "
                      "lattice points\n\n",
                      ms_warm > 0.0 ? ms_cold / ms_warm : 0.0, refine_sum.evaluated,
                      refine_sum.space_size);

    // ---- surrogate-guided exploration on a 10^4-point (T, Pmax) plane ----
    //
    // The headline guided workload: 20 latency bounds x 500 caps over
    // hal.  Hard gates: the guided front must EQUAL the eager front
    // point-for-point (the surrogate steers, never decides), the
    // counters must partition the space, and at most 25% of the plane
    // may be evaluated exactly.
    std::cout << "=== surrogate-guided exploration on a 10^4-point plane ===\n";
    std::vector<int> plane_lat;
    for (int T = 17; T < 37; ++T) plane_lat.push_back(T);
    std::vector<double> plane_caps;
    for (int i = 0; i < 500; ++i)
        plane_caps.push_back(2.0 + 18.0 * static_cast<double>(i) / 499.0);
    const dse::space plane = dse::cross(plane_lat, plane_caps);

    dse::session plane_eager(flow::on(g2).with_library(lib));
    dse::explore_summary plane_eager_sum;
    const double ms_plane_eager =
        run_ms([&] { plane_eager_sum = plane_eager.explore(plane, {}, 0); });

    dse::session plane_guided(flow::on(g2).with_library(lib));
    dse::guided_summary plane_guided_sum;
    const double ms_plane_guided = run_ms(
        [&] { plane_guided_sum = plane_guided.explore_guided(plane, {}, {}, 0); });

    const double guided_fraction =
        static_cast<double>(plane_guided_sum.computed + plane_guided_sum.memo_served) /
        static_cast<double>(plane_guided_sum.space_size);
    const bool guided_identical = plane_guided_sum.front == plane_eager_sum.front;
    const bool guided_partition =
        plane_guided_sum.computed + plane_guided_sum.memo_served +
            plane_guided_sum.skipped ==
        plane_guided_sum.space_size;
    const bool guided_frugal = guided_fraction <= 0.25;
    const bool guided_faster = ms_plane_guided < ms_plane_eager;

    ascii_table t4({"plane walk", "wall (ms)", "computed", "skipped", "fraction"});
    t4.add_row({"eager", strf("%.1f", ms_plane_eager),
                std::to_string(plane_eager_sum.evaluated), "0", "1.000"});
    t4.add_row({"guided", strf("%.1f", ms_plane_guided),
                std::to_string(plane_guided_sum.computed),
                std::to_string(plane_guided_sum.skipped),
                strf("%.3f", guided_fraction)});
    t4.print(std::cout);
    std::cout << strf("guided: %zu rounds, %zu trained rows, %zu verified, front %zu "
                      "points; speedup vs eager %.1fx\n\n",
                      plane_guided_sum.rounds, plane_guided_sum.trained_rows,
                      plane_guided_sum.verified, plane_guided_sum.front.size(),
                      ms_plane_guided > 0.0 ? ms_plane_eager / ms_plane_guided : 0.0);

    // ------------------------------------------------------------ gates
    //
    // The two wall-clock gates are deliberately hard (per ROADMAP) but
    // structurally safe: the duplicate grid hands the two-level cache
    // half its points for free (measured ~1.6x over the level-0 config,
    // far above timing noise), and 24 independent points on >= 4 cores
    // clear 2x with a similar margin.
    const bool committed_hit = c2.committed_hits > 0;
    const bool report_hit = c2.report_hits > 0;
    const bool beats_l0 = ms2_l2 < ms2_l0;
    const bool hard_scaling = cores >= 4;
    const bool scaling_ok = !hard_scaling || speedup_at_4 >= 2.0;

    std::cout << "reports identical across thread counts and caching modes: "
              << (all_identical && grid_identical ? "YES" : "NO") << '\n';
    std::cout << "cache hits taken on every benchmark: " << (all_hit ? "YES" : "NO")
              << '\n';
    std::cout << "committed-window hits taken on the 2-D grid: "
              << (committed_hit ? "YES" : "NO") << '\n';
    std::cout << "report-memo hits taken on the 2-D grid: "
              << (report_hit ? "YES" : "NO") << '\n';
    std::cout << "two-level cache beats the initial-windows-only cache: "
              << (beats_l0 ? "YES" : "NO") << '\n';
    std::cout << "incremental Pareto front equals the post-hoc front: "
              << (pareto_matches ? "YES" : "NO") << '\n';
    std::cout << "cold session explore is byte-identical to run_batch: "
              << (session_identical ? "YES" : "NO") << '\n';
    std::cout << "replayed front deltas reconstruct the final front: "
              << (deltas_ok ? "YES" : "NO") << '\n';
    std::cout << "warm-started session matches the reference at the metric level: "
              << (warm_matches ? "YES" : "NO") << '\n';
    std::cout << "warm-started session beats the cold wall time: "
              << (warm_faster ? "YES" : "NO") << '\n';
    std::cout << "bounded memo respects its capacity and serves metric fallbacks: "
              << (bounded_ok ? "YES" : "NO") << '\n';
    std::cout << "refine lands on the eager grid's front: "
              << (refine_ok ? "YES" : "NO") << '\n';
    std::cout << "guided front equals the eager front on the 10^4-point plane: "
              << (guided_identical ? "YES" : "NO") << '\n';
    std::cout << "guided counters partition the plane: "
              << (guided_partition ? "YES" : "NO") << '\n';
    std::cout << strf("guided evaluated fraction: %.3f (gate <= 0.25)\n",
                      guided_fraction);
    std::cout << "guided walk beats the eager walk on wall time: "
              << (guided_faster ? "YES" : "NO") << '\n';
    std::cout << strf("elliptic speedup at 4 threads: %.2fx (gate %s)\n", speedup_at_4,
                      hard_scaling ? ">= 2x, hard" : "soft: fewer than 4 cores");

    const bool ok = all_identical && grid_identical && all_hit && committed_hit &&
                    report_hit && beats_l0 && pareto_matches && scaling_ok &&
                    session_identical && deltas_ok && warm_matches && warm_faster &&
                    bounded_ok && refine_ok && guided_identical && guided_partition &&
                    guided_frugal && guided_faster;

    // Machine-readable trajectory: one flat JSON object per run, stable
    // keys, so successive PRs can be diffed/plotted without parsing the
    // tables above.
    {
        std::ofstream json("BENCH_batch_sweep.json");
        const auto rate = [](long hits, long misses) {
            const long total = hits + misses;
            return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                             : 0.0;
        };
        json << "{\n";
        json << strf("  \"hardware_threads\": %u,\n", cores);
        json << strf("  \"grid_points\": %zu,\n", grid2.size());
        json << strf("  \"grid_distinct\": %zu,\n", distinct);
        json << strf("  \"cold_wall_ms\": %.3f,\n", ms_cold);
        json << strf("  \"cold_points_per_sec\": %.1f,\n",
                     ms_cold > 0.0 ? 1000.0 * static_cast<double>(grid2.size()) / ms_cold
                                   : 0.0);
        json << strf("  \"warm_wall_ms\": %.3f,\n", ms_warm);
        json << strf("  \"warm_points_per_sec\": %.1f,\n",
                     ms_warm > 0.0 ? 1000.0 * static_cast<double>(grid2.size()) / ms_warm
                                   : 0.0);
        json << strf("  \"warm_speedup_vs_cold\": %.2f,\n",
                     ms_warm > 0.0 ? ms_cold / ms_warm : 0.0);
        json << strf("  \"warm_metric_served\": %zu,\n", warm_sum.metric_served);
        json << strf("  \"invariant_hit_rate\": %.4f,\n", rate(ccold.hits, ccold.misses));
        json << strf("  \"committed_hit_rate\": %.4f,\n",
                     rate(ccold.committed_hits, ccold.committed_misses));
        json << strf("  \"report_hit_rate\": %.4f,\n",
                     rate(ccold.report_hits, ccold.report_misses));
        json << strf("  \"two_level_wall_ms\": %.3f,\n", ms2_l2);
        json << strf("  \"initial_windows_wall_ms\": %.3f,\n", ms2_l0);
        json << strf("  \"uncached_wall_ms\": %.3f,\n", ms2_off);
        json << strf("  \"refine_evaluated\": %zu,\n", refine_sum.evaluated);
        json << strf("  \"refine_lattice\": %zu,\n", refine_sum.space_size);
        json << strf("  \"refine_wall_ms\": %.3f,\n", ms_refine);
        json << strf("  \"eager_wall_ms\": %.3f,\n", ms_eager);
        json << strf("  \"speedup_at_4_threads\": %.2f,\n", speedup_at_4);
        json << strf("  \"guided_space\": %zu,\n", plane_guided_sum.space_size);
        json << strf("  \"guided_computed\": %zu,\n", plane_guided_sum.computed);
        json << strf("  \"guided_memo_served\": %zu,\n", plane_guided_sum.memo_served);
        json << strf("  \"guided_skipped\": %zu,\n", plane_guided_sum.skipped);
        json << strf("  \"guided_verified\": %zu,\n", plane_guided_sum.verified);
        json << strf("  \"guided_evaluated_fraction\": %.4f,\n", guided_fraction);
        json << strf("  \"guided_wall_ms\": %.3f,\n", ms_plane_guided);
        json << strf("  \"guided_eager_wall_ms\": %.3f,\n", ms_plane_eager);
        json << strf("  \"gates_passed\": %s\n", ok ? "true" : "false");
        json << "}\n";
        std::cout << "wrote BENCH_batch_sweep.json\n";
    }

    return ok ? 0 : 1;
}
