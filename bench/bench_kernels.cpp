// Per-kernel micro-benchmarks for the synthesis inner loops (PR 5).
//
// Three kernels are timed in isolation, each optimised path against the
// reference implementation retained behind kernel_knobs():
//
//   * probe    -- power-feasibility probing: a pasap-style placement
//     sweep over a contended ledger, power_tracker::next_fit (skip-ahead
//     via the headroom tree) vs the seed-era linear `++offset` scan;
//   * cands    -- candidate maintenance across merge-loop iterations:
//     the incremental candidate_store vs full enumerate_candidates()
//     per iteration, measured by the kernel_timers region inside
//     run_clique_partitioning over an identical attempt-bounded prefix;
//   * rollback -- merge-attempt state capture + restore: the O(changes)
//     undo log vs the full partition_state deep copy, same region-timer
//     isolation.
//
// Workloads: the paper benchmarks (trajectory rows) and a scaled
// synthetic random-DAG family (100..1000 operations), plus a 10k-op
// row timing the data-oriented candidate path (SoA arena + flat
// sorted store) against the PR-5 map-backed store.  Gates:
//
//   * identity (always hard): both paths must produce bit-identical
//     placements / partitioning results -- including the 10k-op row at
//     1/2/8 intra-point threads -- and the full 120-point
//     duplicate-heavy (T, Pmax) grid must yield byte-identical
//     flow_reports with every kernel optimised vs every kernel on the
//     reference path, at 1/2/8 threads, cached and uncached;
//   * speedup (>= 2x per kernel on the 1000-op synthetic graph, >= 3x
//     for the candidates kernel on the 10k-op row vs the PR-5 path):
//     hard only when a steady, repeatable clock is detected (and
//     PHLS_BENCH_SOFT is unset) -- on noisy CI hardware the speedups
//     are reported as WARN instead of failing the job.
//
// The machine-readable summary goes to BENCH_kernels.json -- the
// repo's first per-kernel perf trajectory.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "cdfg/benchmarks.h"
#include "cdfg/random_dag.h"
#include "flow/flow.h"
#include "power/tracker.h"
#include "sched/schedule.h"
#include "support/kernels.h"
#include "support/strings.h"
#include "support/table.h"
#include "synth/clique.h"

namespace {

using namespace phls;

double run_ms(const std::function<void()>& fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
        .count();
}

/// Best of three repetitions (the usual micro-bench noise guard).
double best_ms(const std::function<void()>& fn)
{
    double best = run_ms(fn);
    for (int i = 0; i < 2; ++i) best = std::min(best, run_ms(fn));
    return best;
}

struct knob_guard {
    kernel_tuning saved = kernel_knobs();
    ~knob_guard() { kernel_knobs() = saved; }
};

kernel_tuning all_reference()
{
    kernel_tuning k;
    k.skip_probe = false;
    k.incremental_candidates = false;
    k.undo_log = false;
    k.soa_arena = false;
    k.dense_power = false;
    k.intra_threads = 1;
    return k;
}

/// The PR-5 kernel set: incremental store + skip probe + undo log, but
/// none of the data-oriented paths (SoA arena, flat store, dense power
/// probing, intra-point threads).  The 10k-op row gates against this.
kernel_tuning pr5_kernels()
{
    kernel_tuning k;
    k.soa_arena = false;
    k.dense_power = false;
    k.intra_threads = 1;
    return k;
}

// ------------------------------------------------------------ probe kernel

struct probe_workload {
    graph g;
    std::vector<node_id> topo;
    std::vector<int> delay;
    std::vector<double> power;
    double cap = 0.0;
};

probe_workload make_probe_workload(const graph& g, const module_library& lib)
{
    probe_workload w{g, g.topo_order(), {}, {}, 0.0};
    const module_assignment fast = fastest_assignment(w.g, lib, unbounded_power);
    double pmax = 0.0;
    for (node_id v : w.g.nodes()) {
        const fu_module& m = lib.module(fast[v.index()]);
        w.delay.push_back(m.latency);
        w.power.push_back(m.power);
        pmax = std::max(pmax, m.power);
    }
    // A cap just above the hungriest module: heavy contention, long
    // skips -- the regime the skip-ahead probe exists for.
    w.cap = 1.2 * pmax;
    return w;
}

/// One pasap-style placement sweep; the reference path probes one offset
/// at a time, the optimised one calls next_fit.  Returns the placement.
std::vector<int> place_all(const probe_workload& w, bool optimised)
{
    power_tracker t(w.cap);
    std::vector<int> start(static_cast<std::size_t>(w.g.node_count()), 0);
    for (node_id v : w.topo) {
        int ready = 0;
        for (node_id p : w.g.preds(v))
            ready = std::max(ready, start[p.index()] + w.delay[p.index()]);
        int s;
        if (optimised) {
            s = t.next_fit(ready, w.delay[v.index()], w.power[v.index()]);
        } else {
            s = ready;
            while (!t.fits(s, w.delay[v.index()], w.power[v.index()])) ++s;
        }
        t.reserve(s, w.delay[v.index()], w.power[v.index()]);
        start[v.index()] = s;
    }
    return start;
}

// --------------------------------------- candidates and rollback kernels

/// Canonical rendering of a partitioning result (binding + counters).
std::string render_partition(const graph& g, const synthesis_result& r)
{
    std::string out = r.feasible ? "ok" : "fail: " + r.reason;
    if (r.feasible)
        for (node_id v : g.nodes())
            out += strf(" %d@%d:m%d/u%d", v.value(), r.dp.sched.start(v),
                        r.dp.sched.module_of(v).value(), r.dp.instance_of[v.index()]);
    out += strf(" | merges=%d pair=%d join=%d rejected=%d recomputes=%d locked=%d "
                "rebinds=%d fallbacks=%d",
                r.stats.merges, r.stats.pair_merges, r.stats.join_merges,
                r.stats.rejected, r.stats.window_recomputes, r.stats.locked ? 1 : 0,
                r.stats.finalize_rebinds, r.stats.finalize_fallbacks);
    return out;
}

struct clique_sample {
    std::string render;
    double candidates_ms = 0.0;
    double rollback_ms = 0.0;
    double wall_ms = 0.0;
};

clique_sample run_clique(const graph& g, const module_library& lib,
                         const synthesis_constraints& c, const synthesis_options& o,
                         const kernel_tuning& knobs)
{
    const knob_guard guard;
    kernel_knobs() = knobs;
    kernel_timing().collect = true;
    kernel_timing().reset();
    clique_sample s;
    synthesis_result r;
    s.wall_ms = run_ms([&] { r = run_clique_partitioning(g, lib, c, o); });
    s.candidates_ms = static_cast<double>(kernel_timing().candidates_ns) / 1e6;
    s.rollback_ms = static_cast<double>(kernel_timing().rollback_ns) / 1e6;
    kernel_timing().collect = false;
    s.render = render_partition(g, r);
    return s;
}

bool identical_reports(const std::vector<flow_report>& a, const std::vector<flow_report>& b)
{
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].to_string() != b[i].to_string()) return false;
    return true;
}

} // namespace

int main()
{
    const module_library lib = table1_library();
    bool identity_ok = true;

    // ---------------------------------------------------- steady clock?
    // The speedup gates are only hard when the host can time a fixed
    // workload repeatably (and the escape hatch is unset): three runs of
    // a mid-size probe sweep must agree within 25%.
    bool steady = std::chrono::steady_clock::is_steady;
    {
        const probe_workload calib =
            make_probe_workload(random_dag({250, 8, 10, 0.3, 0.05, 0.8}, 99), lib);
        double lo = 1e300, hi = 0.0;
        for (int i = 0; i < 3; ++i) {
            const double ms = run_ms([&] { place_all(calib, false); });
            lo = std::min(lo, ms);
            hi = std::max(hi, ms);
        }
        if (lo <= 0.0 || (hi - lo) / lo > 0.25) steady = false;
    }
    if (std::getenv("PHLS_BENCH_SOFT") != nullptr) steady = false;
    std::cout << "steady clock: " << (steady ? "yes (speedup gates hard)"
                                            : "no (speedup gates soft-warn)")
              << "\n\n";

    // ------------------------------------------------------ probe kernel
    std::cout << "=== kernel: power probing (linear scan vs next_fit) ===\n";
    ascii_table probe_table({"workload", "ops", "linear (ms)", "next_fit (ms)",
                             "speedup", "identical"});
    double probe_speedup_1000 = 0.0;
    double probe_ref_1000 = 0.0, probe_opt_1000 = 0.0;
    std::vector<std::pair<std::string, graph>> probe_graphs;
    for (const char* name : {"hal", "cosine", "elliptic"})
        probe_graphs.emplace_back(name, benchmark_by_name(name));
    for (const int n : {100, 250, 500, 1000})
        probe_graphs.emplace_back(strf("synthetic-%d", n),
                                  random_dag({n, std::max(4, n / 12), 10, 0.3, 0.05, 0.8},
                                             20260730 + static_cast<std::uint64_t>(n)));
    for (const auto& [name, g] : probe_graphs) {
        const probe_workload w = make_probe_workload(g, lib);
        std::vector<int> ref_starts, opt_starts;
        const double ref_ms = best_ms([&] { ref_starts = place_all(w, false); });
        const double opt_ms = best_ms([&] { opt_starts = place_all(w, true); });
        const bool same = ref_starts == opt_starts;
        identity_ok = identity_ok && same;
        const double speedup = opt_ms > 0.0 ? ref_ms / opt_ms : 0.0;
        if (name == "synthetic-1000") {
            probe_speedup_1000 = speedup;
            probe_ref_1000 = ref_ms;
            probe_opt_1000 = opt_ms;
        }
        probe_table.add_row({name, std::to_string(g.node_count()), strf("%.3f", ref_ms),
                             strf("%.3f", opt_ms), strf("%.2fx", speedup),
                             same ? "yes" : "NO"});
    }
    probe_table.print(std::cout);
    std::cout << '\n';

    // ------------------------------- candidates and rollback kernels
    //
    // Region timers inside run_clique_partitioning isolate (a) candidate
    // maintenance + pick and (b) rollback capture + restore from the
    // window recomputes both paths share.  Large synthetic runs are
    // bounded to an identical attempt prefix (max_merge_attempts) so the
    // reference full re-enumeration stays affordable; the prefix itself
    // is asserted bit-identical.
    //
    // The incremental store's win scales with merge locality.  The gated
    // synthetic family is an ALU-sharing workload (add/sub/comp ops, no
    // multiplies) under the locked schedule-then-bind regime -- the same
    // pinned-times state the paper's backtrack-and-lock leaves every
    // tight run in, where an accepted merge perturbs only the merged
    // ops' neighbourhood and the reference still re-enumerates
    // everything.  The mult-heavy free-window row is reported (not
    // gated) to show the degradation when every commit re-packs pasap
    // windows globally: there the store approaches one reference
    // enumeration per accept.
    std::cout << "=== kernels: candidate maintenance and rollback ===\n";
    ascii_table clique_table({"workload", "ops", "attempts", "cands ref/opt (ms)",
                              "speedup", "rollback ref/opt (ms)", "speedup",
                              "identical"});
    double cand_speedup_1000 = 0.0, roll_speedup_1000 = 0.0;
    double cand_ref_1000 = 0.0, cand_opt_1000 = 0.0;
    double roll_ref_1000 = 0.0, roll_opt_1000 = 0.0;

    struct clique_case {
        std::string name;
        graph g;
        synthesis_constraints c;
        int attempts; // -1 = run to completion
        bool locked = false;
    };
    double pmax = 0.0;
    for (const fu_module& m : lib.modules()) pmax = std::max(pmax, m.power);
    std::vector<clique_case> cases;
    cases.push_back({"hal", make_hal(), {17, 7.1}, -1, false});
    cases.push_back({"cosine", make_cosine(), {15, 25.0}, -1, false});
    cases.push_back({"elliptic", make_elliptic(), {22, 20.0}, -1, false});
    for (const int n : {100, 250, 1000}) {
        // ALU-sharing family: add/sub/comp only, locked times, a cap of
        // ~2.5 hungriest modules, latency = pasap length + slack.
        graph g = random_dag({n, std::max(4, n / 12), 10, 0.0, 0.05, 0.8},
                             777 + static_cast<std::uint64_t>(n));
        const double cap = 2.5 * pmax;
        const pasap_result lo = pasap(g, lib,
                                      fastest_assignment(g, lib, cap), cap, {});
        if (!lo.feasible) continue;
        const int T = lo.sched.latency(lib) + 4;
        const int attempts = n >= 1000 ? 15 : (n >= 250 ? 30 : 60);
        cases.push_back(
            {strf("synthetic-%d", n), std::move(g), {T, cap}, attempts, true});
    }
    {
        // Ungated degradation row: multiplier-heavy, free windows.
        graph g = random_dag({1000, 83, 10, 0.3, 0.05, 0.8}, 1777);
        const double cap = 2.5 * pmax;
        const pasap_result lo = pasap(g, lib,
                                      fastest_assignment(g, lib, cap), cap, {});
        if (lo.feasible)
            cases.push_back({"synthetic-1000-free-windows", std::move(g),
                             {lo.sched.latency(lib) + 4, cap}, 8, false});
    }

    for (const clique_case& cc : cases) {
        synthesis_options o;
        o.try_both_prospects = false;
        o.verify_result = false;
        o.max_merge_attempts = cc.attempts;
        o.lock_from_start = cc.locked;
        o.allow_cheapest_rebind = cc.attempts < 0; // skip the O(n) finalise
                                                   // rebinds on the big runs

        kernel_tuning cand_ref = kernel_tuning{};
        cand_ref.incremental_candidates = false;
        kernel_tuning roll_ref = kernel_tuning{};
        roll_ref.undo_log = false;

        const clique_sample opt = run_clique(cc.g, lib, cc.c, o, kernel_tuning{});
        const clique_sample cref = run_clique(cc.g, lib, cc.c, o, cand_ref);
        const clique_sample rref = run_clique(cc.g, lib, cc.c, o, roll_ref);

        const bool same = opt.render == cref.render && opt.render == rref.render;
        identity_ok = identity_ok && same;
        const double cand_speedup =
            opt.candidates_ms > 0.0 ? cref.candidates_ms / opt.candidates_ms : 0.0;
        const double roll_speedup =
            opt.rollback_ms > 0.0 ? rref.rollback_ms / opt.rollback_ms : 0.0;
        if (cc.name == "synthetic-1000") {
            cand_speedup_1000 = cand_speedup;
            roll_speedup_1000 = roll_speedup;
            cand_ref_1000 = cref.candidates_ms;
            cand_opt_1000 = opt.candidates_ms;
            roll_ref_1000 = rref.rollback_ms;
            roll_opt_1000 = opt.rollback_ms;
        }
        clique_table.add_row(
            {cc.name, std::to_string(cc.g.node_count()),
             cc.attempts < 0 ? "full" : std::to_string(cc.attempts),
             strf("%.2f / %.2f", cref.candidates_ms, opt.candidates_ms),
             strf("%.2fx", cand_speedup),
             strf("%.3f / %.3f", rref.rollback_ms, opt.rollback_ms),
             strf("%.2fx", roll_speedup), same ? "yes" : "NO"});
    }
    clique_table.print(std::cout);
    std::cout << '\n';

    // ------------------------------------------- 10k-op candidates row
    //
    // The data-oriented core's target scale: one 10k-operation ALU
    // workload from the same family, attempt-bounded, timing the flat
    // SoA candidate path against the PR-5 kernels (classic map-backed
    // incremental store).  The render must be byte-identical across the
    // seed-era reference, the PR-5 path, and the arena path at 1/2/8
    // intra-point threads; the candidates-kernel speedup gates >= 3x on
    // a steady clock.
    std::cout << "=== kernel: 10k-op candidates row (SoA arena vs PR-5 path) ===\n";
    double cand_speedup_10k = 0.0;
    double cand_pr5_10k = 0.0, cand_opt_10k = 0.0;
    bool identical_10k = true;
    {
        graph g = random_dag({10000, 833, 10, 0.0, 0.05, 0.8}, 777 + 10000);
        const double cap = 2.5 * pmax;
        const pasap_result lo =
            pasap(g, lib, fastest_assignment(g, lib, cap), cap, {});
        if (lo.feasible) {
            const synthesis_constraints c{lo.sched.latency(lib) + 4, cap};
            synthesis_options o;
            o.try_both_prospects = false;
            o.verify_result = false;
            o.max_merge_attempts = 2; // bounded so the reference rerun stays affordable
            o.lock_from_start = true;

            const clique_sample opt = run_clique(g, lib, c, o, kernel_tuning{});
            const clique_sample pr5 = run_clique(g, lib, c, o, pr5_kernels());
            const clique_sample ref = run_clique(g, lib, c, o, all_reference());
            identical_10k = opt.render == pr5.render && opt.render == ref.render;
            for (const int threads : {2, 8}) {
                kernel_tuning k;
                k.intra_threads = threads;
                const clique_sample t = run_clique(g, lib, c, o, k);
                identical_10k = identical_10k && t.render == opt.render;
            }
            identity_ok = identity_ok && identical_10k;
            cand_pr5_10k = pr5.candidates_ms;
            cand_opt_10k = opt.candidates_ms;
            cand_speedup_10k =
                opt.candidates_ms > 0.0 ? pr5.candidates_ms / opt.candidates_ms : 0.0;
            ascii_table t10({"workload", "ops", "attempts", "cands pr5/opt (ms)",
                             "speedup", "identical"});
            t10.add_row({"synthetic-10000", std::to_string(g.node_count()), "2",
                         strf("%.1f / %.1f", cand_pr5_10k, cand_opt_10k),
                         strf("%.2fx", cand_speedup_10k),
                         identical_10k ? "yes" : "NO"});
            t10.print(std::cout);
        } else {
            std::cout << "  (10k-op pasap infeasible under the cap; row skipped)\n";
        }
    }
    std::cout << '\n';

    // ----------------- byte-identity on the full 120-point bench grid
    //
    // The same duplicate-heavy 2-D (T, Pmax) grid bench_batch_sweep
    // gates its cache levels on: every kernel optimised vs every kernel
    // on the reference path, 1/2/8 threads, cached and uncached, must
    // serialise identically report for report.
    std::cout << "=== byte-identity: 120-point grid, optimised vs reference ===\n";
    const graph hal = make_hal();
    const flow base = flow::on(hal).with_library(lib).latency(17);
    std::vector<synthesis_constraints> grid;
    for (const int T : {17, 19, 21})
        for (const double cap : base.power_grid(20)) grid.push_back({T, cap});
    {
        const std::vector<synthesis_constraints> once = grid;
        grid.insert(grid.end(), once.begin(), once.end());
    }

    std::vector<flow_report> reference;
    {
        const knob_guard guard;
        kernel_knobs() = all_reference();
        reference =
            flow::on(hal).with_library(lib).caching(false).run_batch(grid, 1);
    }
    bool grid_identical = true;
    for (const bool cached : {false, true}) {
        for (const int threads : {1, 2, 8}) {
            const knob_guard guard;
            kernel_knobs() = kernel_tuning{};
            const std::vector<flow_report> reports =
                flow::on(hal).with_library(lib).caching(cached).run_batch(grid, threads);
            const bool same = identical_reports(reports, reference);
            grid_identical = grid_identical && same;
            std::cout << strf("  threads %d, cache %-3s: %s\n", threads,
                              cached ? "on" : "off", same ? "identical" : "DIVERGED");
        }
    }
    identity_ok = identity_ok && grid_identical;
    std::cout << '\n';

    // ------------------------------------------------------------ gates
    const bool probe_gate = probe_speedup_1000 >= 2.0;
    const bool cand_gate = cand_speedup_1000 >= 2.0;
    const bool roll_gate = roll_speedup_1000 >= 2.0;
    const bool cand_gate_10k = cand_speedup_10k >= 3.0;
    const bool speedups_ok = probe_gate && cand_gate && roll_gate && cand_gate_10k;

    std::cout << "identity gates (placements, partitioning prefix, 10k row, "
                 "120-point grid): "
              << (identity_ok ? "PASS" : "FAIL") << '\n';
    std::cout << strf("probe speedup on synthetic-1000:     %.2fx (gate >= 2x)\n",
                      probe_speedup_1000);
    std::cout << strf("candidate speedup on synthetic-1000: %.2fx (gate >= 2x)\n",
                      cand_speedup_1000);
    std::cout << strf("rollback speedup on synthetic-1000:  %.2fx (gate >= 2x)\n",
                      roll_speedup_1000);
    std::cout << strf("candidate speedup on synthetic-10000 (vs PR-5 path): "
                      "%.2fx (gate >= 3x)\n",
                      cand_speedup_10k);
    if (!speedups_ok && !steady)
        std::cout << "WARN: speedup gate missed, soft-warning only (no steady clock)\n";

    {
        std::ofstream json("BENCH_kernels.json");
        json << "{\n";
        json << strf("  \"steady_clock\": %s,\n", steady ? "true" : "false");
        json << strf("  \"probe_ref_ms_1000\": %.4f,\n", probe_ref_1000);
        json << strf("  \"probe_opt_ms_1000\": %.4f,\n", probe_opt_1000);
        json << strf("  \"probe_speedup_1000\": %.3f,\n", probe_speedup_1000);
        json << strf("  \"candidates_ref_ms_1000\": %.4f,\n", cand_ref_1000);
        json << strf("  \"candidates_opt_ms_1000\": %.4f,\n", cand_opt_1000);
        json << strf("  \"candidates_speedup_1000\": %.3f,\n", cand_speedup_1000);
        json << strf("  \"rollback_ref_ms_1000\": %.4f,\n", roll_ref_1000);
        json << strf("  \"rollback_opt_ms_1000\": %.4f,\n", roll_opt_1000);
        json << strf("  \"rollback_speedup_1000\": %.3f,\n", roll_speedup_1000);
        json << strf("  \"candidates_pr5_ms_10000\": %.4f,\n", cand_pr5_10k);
        json << strf("  \"candidates_opt_ms_10000\": %.4f,\n", cand_opt_10k);
        json << strf("  \"candidates_speedup_10000\": %.3f,\n", cand_speedup_10k);
        json << strf("  \"identical_10000\": %s,\n", identical_10k ? "true" : "false");
        json << strf("  \"grid_points\": %zu,\n", grid.size());
        json << strf("  \"grid_identical\": %s,\n", grid_identical ? "true" : "false");
        json << strf("  \"identity_gates_passed\": %s,\n", identity_ok ? "true" : "false");
        json << strf("  \"speedup_gates_passed\": %s,\n", speedups_ok ? "true" : "false");
        json << strf("  \"speedup_gates_hard\": %s\n", steady ? "true" : "false");
        json << "}\n";
        std::cout << "wrote BENCH_kernels.json\n";
    }

    if (!identity_ok) return 1;
    if (steady && !speedups_ok) return 1;
    return 0;
}
