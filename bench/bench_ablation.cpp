// E5 -- ablations of the heuristic's design choices (DESIGN.md §5):
//
//   * prospect policy: both (default) vs fastest-only vs cheapest-only;
//   * backtrack-and-lock (paper's feasibility mechanism) vs skip-only;
//   * lock-from-start (schedule-then-bind) vs integrated decisions;
//   * cheapest-module rebinding of leftover singletons on/off;
//   * pasap pick order: critical-path vs topological.
//
// Each variant synthesises the three paper benchmarks at a mid-range
// power cap (60 % of the unconstrained peak) and reports area, achieved
// peak and heuristic counters.
#include <functional>
#include <iostream>
#include <vector>

#include "cdfg/benchmarks.h"
#include "flow/flow.h"
#include "support/strings.h"
#include "support/table.h"

namespace {

struct variant {
    const char* name;
    std::function<void(phls::synthesis_options&)> tweak;
};

} // namespace

int main()
{
    using namespace phls;
    const module_library lib = table1_library();

    const std::vector<variant> variants = {
        {"default (both prospects, lock, rebind)", [](synthesis_options&) {}},
        {"prospect fastest only",
         [](synthesis_options& o) {
             o.try_both_prospects = false;
             o.policy = prospect_policy::fastest_fit;
         }},
        {"prospect cheapest only",
         [](synthesis_options& o) {
             o.try_both_prospects = false;
             o.policy = prospect_policy::cheapest_fit;
         }},
        {"no backtrack-and-lock (skip failed decisions)",
         [](synthesis_options& o) { o.enable_backtrack_lock = false; }},
        {"lock from start (schedule-then-bind)",
         [](synthesis_options& o) { o.lock_from_start = true; }},
        {"no cheapest rebind of singletons",
         [](synthesis_options& o) { o.allow_cheapest_rebind = false; }},
        {"pasap topological order",
         [](synthesis_options& o) { o.order = pasap_order::topological; }},
        {"FU area only (no interconnect model)",
         [](synthesis_options& o) { o.costs.include_interconnect = false; }},
    };

    std::cout << "=== E5: ablation of heuristic design choices ===\n";
    for (const auto& [bench, T] :
         {std::pair<const char*, int>{"hal", 17}, {"cosine", 15}, {"elliptic", 22}}) {
        const graph g = benchmark_by_name(bench);
        const flow f = flow::on(g).with_library(lib).latency(T);
        // A challenging but feasible cap: 25 % above the feasibility
        // cliff found on the default power grid (batch-evaluated).
        std::vector<synthesis_constraints> grid;
        for (double cap : f.power_grid(16)) grid.push_back({T, cap});
        double cliff = -1.0;
        for (const flow_report& r : f.run_batch(grid)) {
            if (r.st.ok()) {
                cliff = r.constraints.max_power;
                break;
            }
        }
        if (cliff < 0.0) {
            std::cout << bench << ": no feasible cap found\n";
            return 1;
        }
        const double cap = 1.25 * cliff;

        std::cout << strf("\n--- %s (T=%d, Pmax=%.2f) ---\n", bench, T, cap);
        ascii_table t({"variant", "feasible", "area", "peak", "merges", "rejected", "locked"});
        t.set_align(0, align::left);
        for (const variant& v : variants) {
            synthesis_options opts;
            v.tweak(opts);
            const flow_report r =
                flow::on(g).with_library(lib).latency(T).power_cap(cap).options(opts).run();
            if (!r.st.ok()) {
                t.add_row({v.name, "no", "-", "-", "-", "-", "-"});
                continue;
            }
            t.add_row({v.name, "yes", strf("%.0f", r.area), strf("%.2f", r.peak),
                       std::to_string(r.stats.merges), std::to_string(r.stats.rejected),
                       r.stats.locked ? "yes" : "no"});
        }
        t.print(std::cout);
    }
    std::cout << "\nReading guide: 'default' should be the lowest (or tied-lowest) area\n"
                 "row per benchmark; 'lock from start' shows what integrating\n"
                 "scheduling with binding buys; single-prospect rows show why the\n"
                 "FU-type exploration matters.\n";
    return 0;
}
