// E2 -- regenerates Figure 1 of the paper: an undesired power schedule
// (classical ASAP: everything as early as possible, large spikes above
// the threshold) versus the desired schedule (pasap: the same operations
// stretched so no cycle exceeds the cap P, slightly longer tail within
// the same period T).
//
// Workload: the hal benchmark under Table 1, parallel multipliers (the
// spiky configuration).  The cap is chosen at ~55 % of the unconstrained
// peak, mirroring the paper's sketch where the spike clearly pierces the
// threshold line ('!' marks the cap column in the charts below).
#include <cstdio>
#include <iostream>

#include "cdfg/benchmarks.h"
#include "power/tracker.h"
#include "sched/asap_alap.h"
#include "sched/pasap.h"
#include "support/strings.h"

int main()
{
    using namespace phls;
    const graph g = make_hal();
    const module_library lib = table1_library();
    const module_assignment fastest = fastest_assignment(g, lib, unbounded_power);

    const schedule asap = asap_schedule(g, lib, fastest);
    const power_profile undesired = asap.profile(lib);
    const double cap = 0.55 * undesired.peak();

    const pasap_result constrained = pasap(g, lib, fastest, cap);
    if (!constrained.feasible) {
        std::cout << "pasap infeasible: " << constrained.reason << "\n";
        return 1;
    }
    const power_profile desired = constrained.sched.profile(lib);

    std::cout << "=== Figure 1: power schedules for 'hal' (cap P = " << strf("%.2f", cap)
              << ") ===\n\n";
    std::cout << "Undesired schedule (classical ASAP), peak " << strf("%.2f", undesired.peak())
              << ", latency " << asap.latency(lib) << " cycles:\n"
              << undesired.ascii_chart(cap) << '\n';
    std::cout << "Desired schedule (pasap), peak " << strf("%.2f", desired.peak())
              << ", latency " << constrained.sched.latency(lib) << " cycles:\n"
              << desired.ascii_chart(cap) << '\n';

    std::cout << strf("peak reduced %.2f -> %.2f (cap %.2f); energy %.2f -> %.2f "
                      "(identical work, %.1f%% spread over %d extra cycles)\n",
                      undesired.peak(), desired.peak(), cap, undesired.energy(),
                      desired.energy(), 0.0,
                      constrained.sched.latency(lib) - asap.latency(lib));
    const bool shape_ok = desired.peak() <= cap + 1e-9 && undesired.peak() > cap;
    std::cout << "paper shape (spike above cap eliminated): " << (shape_ok ? "YES" : "NO")
              << '\n';
    return shape_ok ? 0 : 1;
}
