// E2 -- regenerates Figure 1 of the paper: an undesired power schedule
// (classical ASAP: everything as early as possible, large spikes above
// the threshold) versus the desired schedule (pasap: the same operations
// stretched so no cycle exceeds the cap P, slightly longer tail within
// the same period T).
//
// Workload: the hal benchmark under Table 1, parallel multipliers (the
// spiky configuration).  The cap is chosen at ~55 % of the unconstrained
// peak, mirroring the paper's sketch where the spike clearly pierces the
// threshold line ('!' marks the cap column in the charts below).
#include <cstdio>
#include <iostream>

#include "cdfg/benchmarks.h"
#include "flow/strategy.h"
#include "support/strings.h"

int main()
{
    using namespace phls;
    const graph g = make_hal();
    const module_library lib = table1_library();
    const module_assignment fastest = fastest_assignment(g, lib, unbounded_power);

    // Both schedules come from the strategy registry; the explicit
    // assignment pins the *same* (fastest, spiky) module mix for both, so
    // the figure isolates the scheduling effect.
    const strategy_registry& registry = strategy_registry::instance();
    sched_request request;
    request.g = &g;
    request.lib = &lib;
    request.assignment = fastest;

    const sched_outcome asap = registry.scheduler("asap")->run(request);
    if (!asap.st.ok()) {
        std::cout << "asap failed: " << asap.st.to_string() << "\n";
        return 1;
    }
    const power_profile undesired = asap.sched.profile(lib);
    const double cap = 0.55 * undesired.peak();

    request.power_cap = cap;
    const sched_outcome constrained = registry.scheduler("pasap")->run(request);
    if (!constrained.st.ok()) {
        std::cout << "pasap infeasible: " << constrained.st.to_string() << "\n";
        return 1;
    }
    const power_profile desired = constrained.sched.profile(lib);

    std::cout << "=== Figure 1: power schedules for 'hal' (cap P = " << strf("%.2f", cap)
              << ") ===\n\n";
    std::cout << "Undesired schedule (classical ASAP), peak " << strf("%.2f", undesired.peak())
              << ", latency " << asap.sched.latency(lib) << " cycles:\n"
              << undesired.ascii_chart(cap) << '\n';
    std::cout << "Desired schedule (pasap), peak " << strf("%.2f", desired.peak())
              << ", latency " << constrained.sched.latency(lib) << " cycles:\n"
              << desired.ascii_chart(cap) << '\n';

    std::cout << strf("peak reduced %.2f -> %.2f (cap %.2f); energy %.2f -> %.2f "
                      "(identical work, %.1f%% spread over %d extra cycles)\n",
                      undesired.peak(), desired.peak(), cap, undesired.energy(),
                      desired.energy(), 0.0,
                      constrained.sched.latency(lib) - asap.sched.latency(lib));
    const bool shape_ok = desired.peak() <= cap + 1e-9 && undesired.peak() > cap;
    std::cout << "paper shape (spike above cap eliminated): " << (shape_ok ? "YES" : "NO")
              << '\n';
    return shape_ok ? 0 : 1;
}
