// E8 (extension, not in the paper) -- optimality gap of the greedy
// power-aware clique partitioner against the exact branch-and-bound
// synthesiser on small random CDFGs, across power regimes.  The paper
// could not report this; a modern release should.
#include <iostream>

#include "cdfg/analysis.h"
#include "cdfg/random_dag.h"
#include "support/strings.h"
#include "support/table.h"
#include "synth/exact.h"

int main()
{
    using namespace phls;
    const module_library lib = table1_library();

    std::cout << "=== E8: greedy vs exact area on small random CDFGs ===\n\n";
    ascii_table t({"graph", "ops", "T", "Pmax", "exact", "greedy", "gap", "nodes explored"});

    int compared = 0, optimal_hits = 0;
    double worst_gap = 0.0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        random_dag_params params;
        params.operations = 6;
        params.inputs = 2;
        params.layers = 3;
        const graph g = random_dag(params, seed);
        const module_assignment fast = fastest_assignment(g, lib, unbounded_power);
        const int cp = critical_path_length(
            g, [&](node_id v) { return lib.module(fast[v.index()]).latency; });

        for (double cap : {9.0, 20.0}) {
            const synthesis_constraints constraints{cp + 4, cap};
            const exact_result exact = exact_synthesize(g, lib, constraints);
            const synthesis_result greedy = synthesize(g, lib, constraints);
            if (!exact.solved) {
                t.add_row({g.name(), std::to_string(params.operations),
                           std::to_string(constraints.latency), strf("%.1f", cap),
                           "budget", "-", "-", std::to_string(exact.explored)});
                continue;
            }
            if (!exact.feasible) {
                t.add_row({g.name(), std::to_string(params.operations),
                           std::to_string(constraints.latency), strf("%.1f", cap),
                           "infeasible", greedy.feasible ? "?!" : "infeasible", "-",
                           std::to_string(exact.explored)});
                continue;
            }
            const double gap =
                greedy.feasible
                    ? 100.0 * (greedy.dp.area.total() - exact.dp.area.total()) /
                          exact.dp.area.total()
                    : -1.0;
            ++compared;
            if (greedy.feasible && gap <= 1e-9) ++optimal_hits;
            if (gap > worst_gap) worst_gap = gap;
            t.add_row({g.name(), std::to_string(params.operations),
                       std::to_string(constraints.latency), strf("%.1f", cap),
                       strf("%.0f", exact.dp.area.total()),
                       greedy.feasible ? strf("%.0f", greedy.dp.area.total()) : "infeasible",
                       greedy.feasible ? strf("%+.1f%%", gap) : "-",
                       std::to_string(exact.explored)});
        }
    }
    t.print(std::cout);
    std::cout << strf("\ngreedy matched the optimum on %d/%d solved points; worst gap "
                      "%+.1f%%\n",
                      optimal_hits, compared, worst_gap);
    return 0;
}
