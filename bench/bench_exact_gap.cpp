// E8 (extension, not in the paper) -- optimality gap of the greedy
// power-aware clique partitioner against the exact branch-and-bound
// synthesiser on small random CDFGs, across power regimes.  The paper
// could not report this; a modern release should.
#include <iostream>

#include "cdfg/analysis.h"
#include "cdfg/random_dag.h"
#include "flow/flow.h"
#include "support/strings.h"
#include "support/table.h"

int main()
{
    using namespace phls;
    const module_library lib = table1_library();

    std::cout << "=== E8: greedy vs exact area on small random CDFGs ===\n\n";
    ascii_table t({"graph", "ops", "T", "Pmax", "exact", "greedy", "gap", "exact detail"});

    int compared = 0, optimal_hits = 0;
    double worst_gap = 0.0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        random_dag_params params;
        params.operations = 6;
        params.inputs = 2;
        params.layers = 3;
        const graph g = random_dag(params, seed);
        const module_assignment fast = fastest_assignment(g, lib, unbounded_power);
        const int cp = critical_path_length(
            g, [&](node_id v) { return lib.module(fast[v.index()]).latency; });

        for (double cap : {9.0, 20.0}) {
            const synthesis_constraints constraints{cp + 4, cap};
            // Same problem, two registered strategies.
            flow f = flow::on(g).with_library(lib).constraints(constraints);
            const flow_report exact = f.synthesizer("exact").run();
            const flow_report greedy = f.synthesizer("greedy").run();
            // Budget exhaustion (with or without an incumbent) is not a
            // feasibility verdict; report it as such.
            const bool budget = (exact.has_design && !exact.optimal) ||
                                exact.st.message.find("node limit") != std::string::npos;
            if (budget) {
                t.add_row({g.name(), std::to_string(params.operations),
                           std::to_string(constraints.latency), strf("%.1f", cap),
                           "budget", "-", "-", exact.note});
                continue;
            }
            if (!exact.has_design) {
                t.add_row({g.name(), std::to_string(params.operations),
                           std::to_string(constraints.latency), strf("%.1f", cap),
                           "infeasible", greedy.st.ok() ? "?!" : "infeasible", "-",
                           exact.note});
                continue;
            }
            const double gap = greedy.st.ok()
                                   ? 100.0 * (greedy.area - exact.area) / exact.area
                                   : -1.0;
            ++compared;
            if (greedy.st.ok() && gap <= 1e-9) ++optimal_hits;
            if (gap > worst_gap) worst_gap = gap;
            t.add_row({g.name(), std::to_string(params.operations),
                       std::to_string(constraints.latency), strf("%.1f", cap),
                       strf("%.0f", exact.area),
                       greedy.st.ok() ? strf("%.0f", greedy.area) : "infeasible",
                       greedy.st.ok() ? strf("%+.1f%%", gap) : "-", exact.note});
        }
    }
    t.print(std::cout);
    std::cout << strf("\ngreedy matched the optimum on %d/%d solved points; worst gap "
                      "%+.1f%%\n",
                      optimal_hits, compared, worst_gap);
    return 0;
}
