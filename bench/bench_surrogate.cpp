// Surrogate-guided exploration: model throughput and front identity.
//
// Exercises the dse::surrogate stack the way a big sweep does and gates
// the properties the guided walk promises:
//
//   * model throughput -- linear_model::observe and predict are cheap
//     enough to sit inside the exploration loop (rates printed and
//     exported, not gated: they are host-dependent);
//   * front identity -- explore_guided over (T, Pmax) planes of three
//     benchmarks lands on the EXACT eager front, point for point, at
//     every tested margin (hard gate).  The surrogate steers, never
//     decides;
//   * counter partition -- computed + memo_served + skipped equals the
//     space size on every guided run (hard gate);
//   * sharded identity -- a guided sharded sweep (per-shard surrogates,
//     threads mode) merges to the same global front as the
//     single-session eager walk (hard gate);
//   * budget -- a binding --eval-budget caps exact evaluations at the
//     budget (hard gate), trading the identity guarantee for cost.
//
// The machine-readable summary goes to BENCH_surrogate.json.
#include <chrono>
#include <cmath>
#include <fstream>
#include <functional>
#include <iostream>
#include <random>
#include <vector>

#include "cdfg/benchmarks.h"
#include "dse/session.h"
#include "dse/surrogate.h"
#include "flow/flow.h"
#include "serve/shard.h"
#include "support/strings.h"
#include "support/table.h"

namespace {

double run_ms(const std::function<void()>& fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
        .count();
}

std::vector<double> linspace(double lo, double hi, int n)
{
    std::vector<double> out;
    for (int i = 0; i < n; ++i)
        out.push_back(lo + (hi - lo) * static_cast<double>(i) /
                               static_cast<double>(n - 1));
    return out;
}

} // namespace

int main()
{
    using namespace phls;
    const module_library lib = table1_library();

    // ---- raw model throughput: observe + predict rates ----
    std::cout << "=== linear_model throughput (8 features) ===\n";
    constexpr std::size_t train_rows = 100000;
    constexpr std::size_t queries = 100000;
    dse::linear_model model(8, 1e-6);
    std::mt19937 rng(7);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    std::vector<std::vector<double>> xs;
    xs.reserve(train_rows);
    for (std::size_t i = 0; i < train_rows; ++i) {
        std::vector<double> x(8);
        for (double& v : x) v = unit(rng);
        xs.push_back(std::move(x));
    }
    const double ms_observe = run_ms([&] {
        for (std::size_t i = 0; i < train_rows; ++i)
            model.observe(xs[i], xs[i][0] * 3.0 - xs[i][1] + unit(rng) * 0.01);
    });
    double checksum = 0.0;
    const double ms_predict = run_ms([&] {
        for (std::size_t i = 0; i < queries; ++i)
            checksum += model.predict(xs[i % train_rows]).mean;
    });
    const double observe_per_sec =
        ms_observe > 0.0 ? 1000.0 * static_cast<double>(train_rows) / ms_observe : 0.0;
    const double predict_per_sec =
        ms_predict > 0.0 ? 1000.0 * static_cast<double>(queries) / ms_predict : 0.0;
    std::cout << strf("observe: %.0f rows/sec; predict: %.0f queries/sec "
                      "(checksum %.3f, rms %.4f)\n\n",
                      observe_per_sec, predict_per_sec, checksum,
                      model.residual_rms());

    // ---- guided vs eager front identity across benchmarks and margins ----
    std::cout << "=== guided vs eager fronts ===\n";
    struct workload {
        const char* bench;
        int t_lo;
        int t_count;
        int caps;
    };
    // Margins at and above the default: the identity guarantee is
    // empirically gated for the shipped margin (3) and widens with it.
    // Tighter margins (1) trade identity for cost and are NOT gated --
    // that trade is the user's to make, like a binding eval budget.
    const std::vector<workload> workloads = {
        {"hal", 17, 10, 200}, {"cosine", 15, 6, 100}, {"elliptic", 22, 4, 60}};
    const std::vector<double> margins = {3.0, 5.0};

    bool fronts_identical = true;
    bool counters_partition = true;
    double total_fraction = 0.0;
    std::size_t guided_runs = 0;
    ascii_table t({"bench", "points", "margin", "eager (ms)", "guided (ms)",
                   "fraction", "identical"});
    double hal_eager_ms = 0.0;
    double hal_guided_ms = 0.0;
    double hal_fraction = 0.0;
    for (const workload& w : workloads) {
        const graph g = benchmark_by_name(w.bench);
        const flow proto = flow::on(g).with_library(lib).latency(w.t_lo);
        std::vector<int> lat;
        for (int i = 0; i < w.t_count; ++i) lat.push_back(w.t_lo + i);
        const std::vector<double> caps = linspace(2.0, 20.0, w.caps);
        const dse::space plane = dse::cross(lat, caps);

        dse::session eager(proto);
        dse::explore_summary eager_sum;
        const double ms_eager = run_ms([&] { eager_sum = eager.explore(plane, {}, 0); });

        for (const double margin : margins) {
            dse::session guided(proto);
            dse::guided_options go;
            go.margin = margin;
            go.batch = 64; // small planes: let pruning engage within the space
            dse::guided_summary sum;
            const double ms_guided =
                run_ms([&] { sum = guided.explore_guided(plane, go, {}, 0); });
            const bool same = sum.front == eager_sum.front;
            const bool partition =
                sum.computed + sum.memo_served + sum.skipped == sum.space_size;
            fronts_identical = fronts_identical && same;
            counters_partition = counters_partition && partition;
            const double fraction =
                static_cast<double>(sum.computed + sum.memo_served) /
                static_cast<double>(sum.space_size);
            total_fraction += fraction;
            ++guided_runs;
            if (w.bench == std::string("hal") && margin == 3.0) {
                hal_eager_ms = ms_eager;
                hal_guided_ms = ms_guided;
                hal_fraction = fraction;
            }
            t.add_row({w.bench, std::to_string(sum.space_size),
                       strf("%.0f", margin), strf("%.1f", ms_eager),
                       strf("%.1f", ms_guided), strf("%.3f", fraction),
                       same && partition ? "yes" : "NO"});
        }
    }
    t.print(std::cout);
    std::cout << '\n';

    // ---- sharded guided sweep merges to the single-session front ----
    std::cout << "=== sharded guided sweep ===\n";
    const graph hal = make_hal();
    const flow hal_proto = flow::on(hal).with_library(lib).latency(17);
    const dse::space hal_plane =
        dse::cross(std::vector<int>{17, 19, 21, 23}, linspace(2.0, 20.0, 500));
    dse::session hal_ref(hal_proto);
    const dse::explore_summary hal_ref_sum = hal_ref.explore(hal_plane, {}, 0);

    serve::shard_options so;
    so.shards = 4;
    so.threads_per_shard = 2;
    so.guided = true;
    serve::shard_summary shard_sum;
    const double ms_sharded =
        run_ms([&] { shard_sum = serve::explore_sharded(hal_proto, hal_plane, so); });
    const bool sharded_identical = shard_sum.front == hal_ref_sum.front;
    const bool sharded_partition =
        shard_sum.evaluated + shard_sum.skipped == shard_sum.space_size;
    std::cout << strf("4 shards x 2 threads: %.1f ms, computed %zu, skipped %zu of "
                      "%zu; front %s\n\n",
                      ms_sharded, shard_sum.computed, shard_sum.skipped,
                      shard_sum.space_size,
                      sharded_identical ? "identical" : "DIFFERS");

    // ---- a binding eval budget caps exact evaluations ----
    std::cout << "=== bounded eval budget ===\n";
    constexpr std::size_t budget = 200;
    dse::session bounded(hal_proto);
    dse::guided_options bounded_go;
    bounded_go.eval_budget = budget;
    const dse::guided_summary bounded_sum =
        bounded.explore_guided(hal_plane, bounded_go, {}, 0);
    const bool budget_ok =
        bounded_sum.computed <= budget &&
        bounded_sum.computed + bounded_sum.memo_served + bounded_sum.skipped ==
            bounded_sum.space_size;
    std::cout << strf("budget %zu: computed %zu, skipped %zu of %zu\n\n", budget,
                      bounded_sum.computed, bounded_sum.skipped,
                      bounded_sum.space_size);

    // ------------------------------------------------------------ gates
    std::cout << "guided fronts identical to eager on every workload and margin: "
              << (fronts_identical ? "YES" : "NO") << '\n';
    std::cout << "guided counters partition every space: "
              << (counters_partition ? "YES" : "NO") << '\n';
    std::cout << "sharded guided front identical to the single-session front: "
              << (sharded_identical && sharded_partition ? "YES" : "NO") << '\n';
    std::cout << "binding budget respected: " << (budget_ok ? "YES" : "NO") << '\n';

    const bool ok = fronts_identical && counters_partition && sharded_identical &&
                    sharded_partition && budget_ok;

    {
        std::ofstream json("BENCH_surrogate.json");
        json << "{\n";
        json << strf("  \"observe_rows_per_sec\": %.1f,\n", observe_per_sec);
        json << strf("  \"predict_queries_per_sec\": %.1f,\n", predict_per_sec);
        json << strf("  \"guided_runs\": %zu,\n", guided_runs);
        json << strf("  \"mean_evaluated_fraction\": %.4f,\n",
                     guided_runs > 0 ? total_fraction / static_cast<double>(guided_runs)
                                     : 0.0);
        json << strf("  \"hal_eager_wall_ms\": %.3f,\n", hal_eager_ms);
        json << strf("  \"hal_guided_wall_ms\": %.3f,\n", hal_guided_ms);
        json << strf("  \"hal_evaluated_fraction\": %.4f,\n", hal_fraction);
        json << strf("  \"sharded_wall_ms\": %.3f,\n", ms_sharded);
        json << strf("  \"sharded_computed\": %zu,\n", shard_sum.computed);
        json << strf("  \"sharded_skipped\": %zu,\n", shard_sum.skipped);
        json << strf("  \"budget_computed\": %zu,\n", bounded_sum.computed);
        json << strf("  \"gates_passed\": %s\n", ok ? "true" : "false");
        json << "}\n";
        std::cout << "wrote BENCH_surrogate.json\n";
    }
    return ok ? 0 : 1;
}
