// E3 -- regenerates Figure 2 of the paper: circuit area as a function of
// the power constraint, one curve per (benchmark, latency constraint):
//
//   hal (T=10), hal (T=17), cosine (T=12), cosine (T=15), cosine (T=19),
//   elliptic (T=22)
//
// For every curve the power cap is swept over a grid spanning from below
// the infeasibility threshold to above the unconstrained peak.  Rows show
// the cap, achieved peak power and total area; a CSV (figure2.csv) and a
// gnuplot script (figure2.gp) are written next to the binary's working
// directory for re-plotting.
//
// Expected paper shapes (checked and summarised at the end):
//   * each curve has a benchmark/T-dependent minimum feasible power;
//   * area is (weakly) larger near that threshold than on the plateau;
//   * tighter T for the same benchmark costs area and feasible-power range.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <vector>

#include "cdfg/benchmarks.h"
#include "flow/flow.h"
#include "support/csv.h"
#include "support/strings.h"
#include "support/table.h"
#include "synth/explore.h"

namespace {

struct curve_spec {
    const char* bench;
    int latency;
};

} // namespace

int main()
{
    using namespace phls;
    const module_library lib = table1_library();
    const std::vector<curve_spec> curves = {{"hal", 10},    {"hal", 17},    {"cosine", 12},
                                            {"cosine", 15}, {"cosine", 19}, {"elliptic", 22}};

    std::cout << "=== Figure 2: power vs. area under different time constraints ===\n";

    csv_writer csv({"curve", "benchmark", "T", "cap", "feasible", "peak", "area"});
    struct curve_summary {
        std::string name;
        double min_feasible_cap = -1.0;
        double area_at_cliff = 0.0;
        double area_plateau = 0.0;
    };
    std::vector<curve_summary> summaries;

    for (const curve_spec& spec : curves) {
        const graph g = benchmark_by_name(spec.bench);
        const std::string curve_name = strf("%s (T=%d)", spec.bench, spec.latency);
        std::cout << "\n--- " << curve_name << " ---\n";

        // The full cap grid for this curve runs through flow::run_batch
        // (one worker per core; results are input-ordered).
        const flow f = flow::on(g).with_library(lib).latency(spec.latency);
        std::vector<synthesis_constraints> grid;
        for (double cap : f.power_grid(24)) grid.push_back({spec.latency, cap});
        std::vector<sweep_point> raw;
        for (const flow_report& r : f.run_batch(grid)) raw.push_back(to_sweep_point(r));
        // Headline curve: best design found whose achieved peak satisfies
        // the cap (a tight-cap design is valid at looser caps too).
        const std::vector<sweep_point> points = monotone_envelope(raw);

        ascii_table t({"Pmax", "feasible", "peak", "area", "raw area"});
        std::vector<sweep_point> feasible;
        for (std::size_t i = 0; i < points.size(); ++i) {
            const sweep_point& p = points[i];
            const sweep_point& r = raw[i];
            t.add_row({strf("%.2f", p.cap), p.feasible ? "yes" : "no",
                       p.feasible ? strf("%.2f", p.peak) : "-",
                       p.feasible ? strf("%.0f", p.area) : "-",
                       r.feasible ? strf("%.0f", r.area) : "-"});
            csv.add_row({curve_name, spec.bench, std::to_string(spec.latency),
                         strf("%.4f", p.cap), p.feasible ? "1" : "0",
                         p.feasible ? strf("%.4f", p.peak) : "",
                         p.feasible ? strf("%.2f", p.area) : ""});
            if (p.feasible) feasible.push_back(p);
        }
        t.print(std::cout);

        // Summary robust to greedy wobble: the cliff is the most expensive
        // design in the tightest third of feasible caps, the plateau the
        // cheapest design in the loosest third.
        curve_summary summary;
        summary.name = curve_name;
        if (!feasible.empty()) {
            summary.min_feasible_cap = feasible.front().cap;
            const std::size_t third = std::max<std::size_t>(1, feasible.size() / 3);
            for (std::size_t i = 0; i < third; ++i)
                summary.area_at_cliff = std::max(summary.area_at_cliff, feasible[i].area);
            summary.area_plateau = feasible.back().area;
            for (std::size_t i = feasible.size() - third; i < feasible.size(); ++i)
                summary.area_plateau = std::min(summary.area_plateau, feasible[i].area);
        }
        summaries.push_back(summary);
    }

    csv.save("figure2.csv");
    {
        std::ofstream gp("figure2.gp");
        gp << "# gnuplot script regenerating the paper's Figure 2 from figure2.csv\n"
              "set datafile separator ','\n"
              "set xlabel 'Power'\nset ylabel 'Area'\nset key top right\n"
              "set title 'Power vs. area under different time constraints'\n"
              "plot for [c in \"hal_(T=10) hal_(T=17) cosine_(T=12) cosine_(T=15) "
              "cosine_(T=19) elliptic_(T=22)\"] \\\n"
              "  'figure2.csv' using 4:($5==1?$7:1/0):(strcol(1)) \\\n"
              "  smooth unique title c\n";
    }

    std::cout << "\n=== Curve summaries (paper-shape checks) ===\n";
    ascii_table s({"curve", "min feasible P", "area@cliff", "area@plateau", "cliff>=plateau"});
    bool all_shapes = true;
    for (const curve_summary& c : summaries) {
        // 2 % tolerance: a flat curve (elliptic) still counts as the
        // paper's "small amount of area" trade.
        const bool ok =
            c.min_feasible_cap >= 0.0 && c.area_at_cliff >= 0.98 * c.area_plateau;
        all_shapes = all_shapes && ok;
        s.add_row({c.name, strf("%.2f", c.min_feasible_cap), strf("%.0f", c.area_at_cliff),
                   strf("%.0f", c.area_plateau), ok ? "yes" : "NO"});
    }
    s.print(std::cout);
    std::cout << "\nwrote figure2.csv and figure2.gp\n";
    std::cout << "paper shape (area can be traded for power feasibility): "
              << (all_shapes ? "YES" : "NO") << '\n';
    return all_shapes ? 0 : 1;
}
