// E6 -- algorithmic cost (google-benchmark): scheduler and synthesis
// runtimes on the paper benchmarks and on random layered DAGs of growing
// size.  Not a paper artefact; standard engineering hygiene for a
// release.
#include <benchmark/benchmark.h>

#include "cdfg/analysis.h"
#include "cdfg/benchmarks.h"
#include "cdfg/random_dag.h"
#include "flow/flow.h"
#include "sched/mobility.h"
#include "sched/pasap.h"

namespace {

using namespace phls;

void bm_pasap_random(benchmark::State& state)
{
    const int ops = static_cast<int>(state.range(0));
    random_dag_params params;
    params.operations = ops;
    params.inputs = std::max(2, ops / 8);
    params.layers = std::max(2, ops / 6);
    const graph g = random_dag(params, 42);
    const module_library lib = table1_library();
    const module_assignment a = fastest_assignment(g, lib, 10.0);
    for (auto _ : state) {
        const pasap_result r = pasap(g, lib, a, 10.0);
        benchmark::DoNotOptimize(r.feasible);
    }
    state.SetComplexityN(ops);
}
BENCHMARK(bm_pasap_random)->Arg(20)->Arg(50)->Arg(100)->Arg(200)->Complexity();

void bm_power_windows_random(benchmark::State& state)
{
    const int ops = static_cast<int>(state.range(0));
    random_dag_params params;
    params.operations = ops;
    const graph g = random_dag(params, 7);
    const module_library lib = table1_library();
    const module_assignment a = fastest_assignment(g, lib, 12.0);
    const int latency = 4 * critical_path_length(g, [&](node_id v) {
                            return lib.module(a[v.index()]).latency;
                        });
    for (auto _ : state) {
        const time_windows w = power_windows(g, lib, a, 12.0, latency);
        benchmark::DoNotOptimize(w.feasible);
    }
}
BENCHMARK(bm_power_windows_random)->Arg(20)->Arg(50)->Arg(100);

void bm_synthesize_benchmark(benchmark::State& state, const char* name, int T)
{
    const graph g = benchmark_by_name(name);
    const module_library lib = table1_library();
    // The probe design's own peak is always an achievable cap, so the
    // loop below times the feasible (full-work) path.
    const synthesis_result probe = synthesize(g, lib, {T, unbounded_power});
    const double cap = probe.feasible ? probe.dp.peak_power(lib) : 10.0;
    for (auto _ : state) {
        const synthesis_result r = synthesize(g, lib, {T, cap});
        benchmark::DoNotOptimize(r.feasible);
    }
}
BENCHMARK_CAPTURE(bm_synthesize_benchmark, hal_T17, "hal", 17);
BENCHMARK_CAPTURE(bm_synthesize_benchmark, cosine_T15, "cosine", 15);
BENCHMARK_CAPTURE(bm_synthesize_benchmark, elliptic_T22, "elliptic", 22);

void bm_synthesize_random(benchmark::State& state)
{
    const int ops = static_cast<int>(state.range(0));
    random_dag_params params;
    params.operations = ops;
    const graph g = random_dag(params, 11);
    const module_library lib = table1_library();
    const module_assignment a = cheapest_assignment(g, lib, unbounded_power);
    const int latency = 2 * critical_path_length(g, [&](node_id v) {
                            return lib.module(a[v.index()]).latency;
                        });
    for (auto _ : state) {
        const synthesis_result r = synthesize(g, lib, {latency, 15.0});
        benchmark::DoNotOptimize(r.feasible);
    }
    state.SetComplexityN(ops);
}
BENCHMARK(bm_synthesize_random)->Arg(20)->Arg(40)->Arg(80)->Unit(benchmark::kMillisecond)->Complexity();

void bm_flow_batch(benchmark::State& state)
{
    const int threads = static_cast<int>(state.range(0));
    const graph g = make_elliptic();
    const module_library lib = table1_library();
    const flow f = flow::on(g).with_library(lib).latency(22);
    std::vector<synthesis_constraints> grid;
    for (double cap : f.power_grid(20)) grid.push_back({22, cap});
    for (auto _ : state) {
        const std::vector<flow_report> reports = f.run_batch(grid, threads);
        benchmark::DoNotOptimize(reports.size());
    }
}
BENCHMARK(bm_flow_batch)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
