// Acceptance gates of the multi-task scheduling engine over mixes of
// the paper's benchmark kernels (hal, cosine, elliptic):
//
//   * dominance — for every mix, the battery-aware policy meets at
//     least as many deadlines AND reaches at least the composed-profile
//     lifetime of the non-preemptive EDF baseline (hard gate; the
//     engine keeps the baseline in its portfolio, so a regression here
//     means the portfolio logic broke);
//   * determinism — the battery schedule's to_string() is byte-identical
//     at 1, 2 and 8 worker threads for every mix (hard gate);
//   * the per-mix schedules and timings are reported and written to
//     BENCH_tasks.json so the trajectory is comparable across PRs.
#include <chrono>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "serve/server.h"
#include "support/strings.h"
#include "support/table.h"
#include "task/engine.h"

namespace {

double run_ms(const std::function<void()>& fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
        .count();
}

/// The benchmark mixes, in the task-set text format the CLI accepts.
const struct mix {
    const char* name;
    const char* text;
} kMixes[] = {
    {"trio",
     "taskset trio\n"
     "envelope 10.0\n"
     "battery beta 0.1 cycle 0.5 idle 4\n"
     "task hal      hal      deadline 60\n"
     "task cosine   cosine   deadline 120 release 10\n"
     "task elliptic elliptic deadline 200 release 20\n"},
    {"radio6",
     "taskset radio6\n"
     "envelope 12.0\n"
     "battery beta 0.1 cycle 0.5 idle 8\n"
     "task rx1 hal      deadline 70\n"
     "task rx2 hal      deadline 140 release 40\n"
     "task eq1 cosine   deadline 180 release 10\n"
     "task eq2 cosine   deadline 320 release 120 iterations 2\n"
     "task f1  elliptic deadline 260 release 30\n"
     "task f2  elliptic deadline 480 release 200\n"},
    {"bursty",
     "taskset bursty\n"
     "envelope 8.0\n"
     "battery beta 0.1 cycle 0.5 idle 4\n"
     "task burst hal deadline 400 iterations 4\n"
     "task bg    hal deadline 600 release 100 iterations 2\n"},
};

} // namespace

int main()
{
    using namespace phls;

    std::cout << "=== multi-task scheduling: dominance / determinism gates ===\n\n";

    ascii_table table({"mix", "tasks", "policy", "met", "makespan", "gaps",
                       "peak", "lifetime (s)", "wall (ms)"});
    bool dominance_ok = true;
    bool determinism_ok = true;

    struct row {
        std::string name;
        std::size_t tasks = 0;
        task::task_schedule edf;
        task::task_schedule bat;
        double ms_edf = 0.0;
        double ms_bat = 0.0;
        bool dominated = false;
        bool deterministic = false;
    };
    std::vector<row> rows;

    for (const mix& m : kMixes) {
        const task::task_set set = task::parse_task_set_string(m.text);
        serve::session_pool pool; // both policies share warm sessions

        row r;
        r.name = m.name;
        r.tasks = set.tasks.size();
        r.ms_edf =
            run_ms([&] { r.edf = task::schedule(set, task::policy::edf, pool); });
        r.ms_bat = run_ms(
            [&] { r.bat = task::schedule(set, task::policy::battery, pool); });

        r.dominated = r.bat.met >= r.edf.met &&
                      r.bat.lifetime_seconds >= r.edf.lifetime_seconds;
        dominance_ok = dominance_ok && r.dominated;

        // Byte-identity across worker thread counts (fresh pools: the
        // gate covers the cold path, not a warm replay).
        r.deterministic = true;
        std::string want;
        for (const int threads : {1, 2, 8}) {
            task::schedule_options opts;
            opts.threads = threads;
            const std::string got =
                task::schedule(set, task::policy::battery, opts).to_string();
            if (threads == 1)
                want = got;
            else
                r.deterministic = r.deterministic && got == want;
        }
        determinism_ok = determinism_ok && r.deterministic;

        for (const task::task_schedule* s : {&r.edf, &r.bat})
            table.add_row({r.name, strf("%zu", r.tasks), s->policy,
                           strf("%d/%zu", s->met, r.tasks),
                           strf("%d", s->makespan), strf("%d", s->preemption_gaps),
                           strf("%.3f", s->peak),
                           strf("%.3f", s->lifetime_seconds),
                           strf("%.1f", s == &r.edf ? r.ms_edf : r.ms_bat)});
        rows.push_back(std::move(r));
    }

    std::cout << table.to_string() << '\n';
    std::cout << "battery >= edf on met deadlines AND lifetime (all mixes): "
              << (dominance_ok ? "YES" : "NO") << '\n';
    std::cout << "battery schedule byte-identical at 1/2/8 threads:         "
              << (determinism_ok ? "YES" : "NO") << '\n';
    const bool ok = dominance_ok && determinism_ok;

    {
        std::ofstream json("BENCH_tasks.json");
        json << "{\n  \"mixes\": [\n";
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const row& r = rows[i];
            json << strf("    {\"name\": \"%s\", \"tasks\": %zu,\n", r.name.c_str(),
                         r.tasks);
            json << strf("     \"edf\": {\"met\": %d, \"makespan\": %d, "
                         "\"peak\": %.6f, \"lifetime_s\": %.6f, \"wall_ms\": %.3f},\n",
                         r.edf.met, r.edf.makespan, r.edf.peak,
                         r.edf.lifetime_seconds, r.ms_edf);
            json << strf("     \"battery\": {\"met\": %d, \"makespan\": %d, "
                         "\"gaps\": %d, \"peak\": %.6f, \"lifetime_s\": %.6f, "
                         "\"wall_ms\": %.3f},\n",
                         r.bat.met, r.bat.makespan, r.bat.preemption_gaps,
                         r.bat.peak, r.bat.lifetime_seconds, r.ms_bat);
            json << strf("     \"dominated\": %s, \"deterministic\": %s}%s\n",
                         r.dominated ? "true" : "false",
                         r.deterministic ? "true" : "false",
                         i + 1 < rows.size() ? "," : "");
        }
        json << "  ],\n";
        json << strf("  \"gates_passed\": %s\n", ok ? "true" : "false");
        json << "}\n";
        std::cout << "wrote BENCH_tasks.json\n";
    }

    return ok ? 0 : 1;
}
