// Acceptance gates of the distributed exploration service over the
// 120-point duplicate-heavy 2-D grid (hal, T in {17,19,21} x 20 caps,
// every point twice — the same grid bench_batch_sweep uses):
//
//   * sharding — explore_sharded at 1, 2 and 8 shards (in-process
//     sessions) and at 4 forked subprocess workers produces a final
//     Pareto front IDENTICAL to single-process dse::session::explore
//     (hard gate, point-for-point equality);
//   * mergeable caches — the 8 per-shard cache files merged with
//     explore_cache::merge_files load into a fresh session that replays
//     the whole grid at the metric level (metric_served == all points),
//     exactly like a session warm-started from the single save()d
//     cache, and lands on the same front (hard gate);
//   * serving — a live server on a unix socket answers 4 concurrent
//     clients submitting the same sweep; every client's front equals
//     the single-process front, all four share ONE pooled session, and
//     the server shuts down cleanly (hard gate);
//   * recovery — with a deterministic fault injected (a forked worker
//     SIGKILLed mid-sweep; a shard cache corrupted during save), the
//     supervised sweep and the --skip-bad merge still land on the exact
//     single-process front (hard gate: fault tolerance must not cost
//     identity);
//   * timings for every mode are reported and written to
//     BENCH_serve.json so the trajectory is comparable across PRs.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "cdfg/benchmarks.h"
#include "dse/session.h"
#include "flow/explore_cache.h"
#include "flow/flow.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/shard.h"
#include "support/faultpoints.h"
#include "support/strings.h"
#include "support/table.h"

namespace {

double run_ms(const std::function<void()>& fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
        .count();
}

bool same_front(const std::vector<phls::front_point>& a,
                const std::vector<phls::front_point>& b)
{
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (!(a[i] == b[i])) return false;
    return true;
}

} // namespace

int main()
{
    using namespace phls;
    const module_library lib = table1_library();
    const graph g = make_hal();
    const flow proto = flow::on(g).with_library(lib).latency(17);

    // The duplicate-heavy 2-D grid: 3 latencies x 20 caps, twice each.
    std::vector<synthesis_constraints> grid;
    for (int T : {17, 19, 21})
        for (double cap : proto.power_grid(20)) grid.push_back({T, cap});
    const std::size_t distinct = grid.size();
    const std::vector<synthesis_constraints> once = grid; // self-insert is UB
    grid.insert(grid.end(), once.begin(), once.end());

    std::cout << "=== distributed exploration service: shard / merge / serve gates ===\n";
    std::cout << grid.size() << " points (" << distinct << " distinct), hal graph\n\n";

    // ------------------------------------------------ single-process reference
    std::vector<front_point> want;
    dse::explore_summary ref_sum;
    const std::string single_cache = "BENCH_serve_single.phlscache";
    const double ms_single = run_ms([&] {
        dse::session session(proto);
        ref_sum = session.explore(dse::list(grid), {}, 1);
        session.save(single_cache);
    });
    want = ref_sum.front;
    std::cout << strf("single-process reference: %.1f ms, front of %zu points\n\n",
                      ms_single, want.size());

    // ---------------------------------------------------------------- sharding
    const std::string cache_dir = "BENCH_serve_caches";
    ::mkdir(cache_dir.c_str(), 0755);

    ascii_table shard_table({"mode", "shards", "wall (ms)", "evaluated", "front ok"});
    bool shards_ok = true;
    std::vector<std::string> shard8_files;
    double ms_shard8 = 0.0;
    for (const int shards : {1, 2, 8}) {
        serve::shard_options opts;
        opts.shards = shards;
        if (shards == 8) opts.cache_dir = cache_dir; // keep the 8 shard files
        serve::shard_summary sum;
        const double ms =
            run_ms([&] { sum = serve::explore_sharded(proto, dse::list(grid), opts); });
        const bool ok = same_front(sum.front, want) && sum.evaluated == grid.size();
        shards_ok = shards_ok && ok;
        if (shards == 8) {
            shard8_files = sum.cache_files;
            ms_shard8 = ms;
        }
        shard_table.add_row({"threads", strf("%d", shards), strf("%.1f", ms),
                             strf("%zu", sum.evaluated), ok ? "YES" : "NO"});
    }

    serve::shard_options proc_opts;
    proc_opts.shards = 4;
    proc_opts.processes = true;
    serve::shard_summary proc_sum;
    const double ms_procs = run_ms(
        [&] { proc_sum = serve::explore_sharded(proto, dse::list(grid), proc_opts); });
    const bool procs_ok =
        same_front(proc_sum.front, want) && proc_sum.evaluated == grid.size();
    shard_table.add_row({"processes", "4", strf("%.1f", ms_procs),
                         strf("%zu", proc_sum.evaluated), procs_ok ? "YES" : "NO"});
    std::cout << shard_table.to_string() << '\n';

    // --------------------------------------------------------- mergeable caches
    // Reference warm behaviour: the single save()d cache replays the
    // whole grid at the metric level.
    dse::explore_summary single_warm;
    const double ms_single_warm = run_ms([&] {
        dse::session warm(proto);
        warm.load(single_cache);
        single_warm = warm.explore(dse::list(grid), {}, 1);
    });

    // The 8 per-shard files merged into one cache file must behave the
    // same: every point served from metrics, same front.
    const std::string merged_path = cache_dir + std::string("/merged.phlscache");
    cache_merge_stats merge_stats;
    dse::explore_summary merged_warm;
    double ms_merge = 0.0;
    double ms_merged_replay = 0.0;
    bool merge_ok = false;
    if (shard8_files.size() == 8) {
        ms_merge =
            run_ms([&] { merge_stats = explore_cache::merge_files(merged_path, shard8_files); });
        ms_merged_replay = run_ms([&] {
            dse::session warm(proto);
            warm.load(merged_path);
            merged_warm = warm.explore(dse::list(grid), {}, 1);
        });
        merge_ok = merged_warm.metric_served == grid.size() &&
                   merged_warm.metric_served == single_warm.metric_served &&
                   same_front(merged_warm.front, want);
    }
    std::cout << strf("single warm cache replay:  %.1f ms, %zu/%zu metric-served\n",
                      ms_single_warm, single_warm.metric_served, grid.size());
    std::cout << strf("8 shard caches merge:      %.1f ms (%zu committed, %zu metrics)\n",
                      ms_merge, merge_stats.committed_total, merge_stats.metric_total);
    std::cout << strf("merged cache replay:       %.1f ms, %zu/%zu metric-served\n",
                      ms_merged_replay, merged_warm.metric_served, grid.size());
    std::cout << "merged == single warm cache: " << (merge_ok ? "YES" : "NO") << "\n\n";

    // ------------------------------------------------------------------ serving
    serve::server_options srv_opts;
    srv_opts.socket_path = "BENCH_serve.sock";
    std::remove(srv_opts.socket_path.c_str());
    bool serve_ok = true;
    std::size_t pooled_sessions = 0;
    double ms_serve = 0.0;
    {
        serve::server srv(srv_opts);
        srv.start();
        const serve::job_request job = serve::make_job(proto, dse::list(grid));
        constexpr int clients = 4;
        std::vector<serve::done_frame> done(clients);
        std::vector<bool> failed(clients, false);
        ms_serve = run_ms([&] {
            std::vector<std::thread> threads;
            for (int i = 0; i < clients; ++i) {
                threads.emplace_back([&, i] {
                    try {
                        serve::client c(serve::connect_unix(srv.socket_path()));
                        done[static_cast<std::size_t>(i)] = c.explore(job);
                        c.bye();
                    } catch (const std::exception& e) {
                        std::cerr << "client " << i << " failed: " << e.what() << '\n';
                        failed[static_cast<std::size_t>(i)] = true;
                    }
                });
            }
            for (std::thread& t : threads) t.join();
        });
        for (int i = 0; i < clients; ++i) {
            const std::size_t idx = static_cast<std::size_t>(i);
            serve_ok = serve_ok && !failed[idx] && same_front(done[idx].front, want) &&
                       done[idx].evaluated == grid.size();
        }
        pooled_sessions = srv.stats().sessions;
        serve_ok = serve_ok && pooled_sessions == 1 && srv.stats().jobs == 4;
        srv.stop();
    }
    std::remove(srv_opts.socket_path.c_str());
    std::cout << strf("4 concurrent served sweeps: %.1f ms total, %zu pooled session(s)\n",
                      ms_serve, pooled_sessions);
    std::cout << "every served front == single-process front: "
              << (serve_ok ? "YES" : "NO") << "\n\n";

    // ---------------------------------------------------------------- recovery
    // Gate 1: a forked worker SIGKILLed mid-sweep is respawned and the
    // recovered front is still point-for-point the single-process one.
    serve::shard_options kill_opts;
    kill_opts.shards = 4;
    kill_opts.processes = true;
    kill_opts.retry_backoff_ms = 1;
    serve::shard_summary kill_sum;
    fault_arm("shard.worker.kill:5");
    const double ms_kill = run_ms(
        [&] { kill_sum = serve::explore_sharded(proto, dse::list(grid), kill_opts); });
    const bool kill_injected = fault_fired("shard.worker.kill");
    fault_clear();
    const bool kill_ok = kill_injected && same_front(kill_sum.front, want) &&
                         kill_sum.evaluated == grid.size();
    std::cout << strf("worker-kill recovery:      %.1f ms, %zu respawn(s), "
                      "front %s\n",
                      ms_kill, kill_sum.worker_retries,
                      kill_ok ? "identical" : "BROKEN");

    // Gate 2: one shard cache corrupted during save; the --skip-bad
    // merge drops it, and the warm replay of the survivors recomputes
    // the hole yet lands on the identical front.
    const std::string chaos_dir = "BENCH_serve_chaos";
    ::mkdir(chaos_dir.c_str(), 0755);
    serve::shard_options chaos_opts;
    chaos_opts.shards = 8;
    chaos_opts.cache_dir = chaos_dir;
    serve::shard_summary chaos_sum;
    fault_arm("cache.save.corrupt:1");
    chaos_sum = serve::explore_sharded(proto, dse::list(grid), chaos_opts);
    const bool corrupt_injected = fault_fired("cache.save.corrupt");
    fault_clear();
    const std::string chaos_merged = chaos_dir + std::string("/merged.phlscache");
    cache_merge_stats chaos_stats;
    dse::explore_summary chaos_warm;
    const double ms_chaos = run_ms([&] {
        chaos_stats =
            explore_cache::merge_files(chaos_merged, chaos_sum.cache_files, true);
        dse::session warm(proto);
        warm.load(chaos_merged);
        chaos_warm = warm.explore(dse::list(grid), {}, 1);
    });
    // No hole-size assertion: on this duplicate-heavy grid the corrupted
    // shard's keys also live in its duplicate shard's cache, so the
    // replay may still be fully metric-served.  The gate is that the
    // damage is detected, skipped, and costs no identity.
    const bool chaos_ok = corrupt_injected && chaos_stats.skipped_inputs == 1 &&
                          chaos_warm.evaluated == grid.size() &&
                          same_front(chaos_warm.front, want);
    std::cout << strf("corrupt-cache recovery:    %.1f ms, %zu/8 caches skipped, "
                      "%zu/%zu metric-served, front %s\n\n",
                      ms_chaos, chaos_stats.skipped_inputs,
                      chaos_warm.metric_served, grid.size(),
                      chaos_ok ? "identical" : "BROKEN");

    // ------------------------------------------------------------------- gates
    std::cout << "sharded fronts (1/2/8 shards) identical: "
              << (shards_ok ? "YES" : "NO") << '\n';
    std::cout << "subprocess-worker front identical:       "
              << (procs_ok ? "YES" : "NO") << '\n';
    std::cout << "merged shard caches == single warm cache: "
              << (merge_ok ? "YES" : "NO") << '\n';
    std::cout << "served sweeps identical, one shared session: "
              << (serve_ok ? "YES" : "NO") << '\n';
    std::cout << "killed-worker recovery front identical:  "
              << (kill_ok ? "YES" : "NO") << '\n';
    std::cout << "corrupt-cache skip-bad recovery identical: "
              << (chaos_ok ? "YES" : "NO") << '\n';
    const bool ok =
        shards_ok && procs_ok && merge_ok && serve_ok && kill_ok && chaos_ok;

    {
        std::ofstream json("BENCH_serve.json");
        json << "{\n";
        json << strf("  \"grid_points\": %zu,\n", grid.size());
        json << strf("  \"grid_distinct\": %zu,\n", distinct);
        json << strf("  \"single_wall_ms\": %.3f,\n", ms_single);
        json << strf("  \"shard8_wall_ms\": %.3f,\n", ms_shard8);
        json << strf("  \"procs4_wall_ms\": %.3f,\n", ms_procs);
        json << strf("  \"single_warm_wall_ms\": %.3f,\n", ms_single_warm);
        json << strf("  \"merge_wall_ms\": %.3f,\n", ms_merge);
        json << strf("  \"merged_replay_wall_ms\": %.3f,\n", ms_merged_replay);
        json << strf("  \"merged_metric_served\": %zu,\n", merged_warm.metric_served);
        json << strf("  \"serve_4_clients_wall_ms\": %.3f,\n", ms_serve);
        json << strf("  \"pooled_sessions\": %zu,\n", pooled_sessions);
        json << strf("  \"kill_recovery_wall_ms\": %.3f,\n", ms_kill);
        json << strf("  \"kill_recovery_respawns\": %zu,\n", kill_sum.worker_retries);
        json << strf("  \"chaos_merge_replay_wall_ms\": %.3f,\n", ms_chaos);
        json << strf("  \"chaos_caches_skipped\": %zu,\n", chaos_stats.skipped_inputs);
        json << strf("  \"gates_passed\": %s\n", ok ? "true" : "false");
        json << "}\n";
        std::cout << "wrote BENCH_serve.json\n";
    }

    // Scratch files are inputs to nothing else: clean them up.
    for (const std::string& path : shard8_files) std::remove(path.c_str());
    std::remove(merged_path.c_str());
    std::remove(single_cache.c_str());
    ::rmdir(cache_dir.c_str());
    for (const std::string& path : chaos_sum.cache_files) std::remove(path.c_str());
    std::remove(chaos_merged.c_str());
    ::rmdir(chaos_dir.c_str());

    return ok ? 0 : 1;
}
