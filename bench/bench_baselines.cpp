// E7 -- the paper's integrated algorithm against the two algorithm
// families of its related work (§1):
//
//   (a) two-step: time-constrained synthesis first, then reorder the
//       schedule to cut the peak (refs [1,2] style);
//   (b) schedule-then-bind: force-directed scheduling (power-oblivious)
//       followed by greedy binding.
//
// For each paper benchmark at its paper latency constraints and a cap of
// 60 % of the unconstrained peak, the table reports whether each flow
// meets the cap and at what area.  The integrated flow is the only one
// that *guarantees* the cap (it treats power as a constraint, not a
// post-pass objective).
#include <iostream>

#include "cdfg/benchmarks.h"
#include "flow/flow.h"
#include "support/strings.h"
#include "support/table.h"

int main()
{
    using namespace phls;
    const module_library lib = table1_library();

    std::cout << "=== E7: integrated algorithm vs. baseline flows ===\n\n";
    ascii_table t({"benchmark", "T", "Pmax", "flow", "meets P", "peak", "area"});
    t.set_align(3, align::left);

    bool integrated_always_meets = true;
    for (const auto& [bench, T] :
         {std::pair<const char*, int>{"hal", 10}, {"hal", 17}, {"cosine", 12},
          {"cosine", 15}, {"cosine", 19}, {"elliptic", 22}}) {
        const graph g = benchmark_by_name(bench);
        flow f = flow::on(g).with_library(lib).latency(T);
        // A challenging but feasible cap: 25 % above the feasibility cliff.
        std::vector<synthesis_constraints> grid;
        for (double c : f.power_grid(16)) grid.push_back({T, c});
        double cliff = -1.0;
        for (const flow_report& r : f.run_batch(grid)) {
            if (r.st.ok()) {
                cliff = r.constraints.max_power;
                break;
            }
        }
        if (cliff < 0.0) continue;
        const double cap = 1.25 * cliff;
        const std::string caps = strf("%.2f", cap);
        f.power_cap(cap);

        // All three flows are the same pipeline with a different
        // registered synthesizer strategy.
        const flow_report integrated = f.synthesizer("greedy").run();
        if (integrated.has_design) {
            integrated_always_meets = integrated_always_meets && integrated.st.ok();
            t.add_row({bench, std::to_string(T), caps, "integrated (paper)",
                       integrated.st.ok() ? "yes" : "NO", strf("%.2f", integrated.peak),
                       strf("%.0f", integrated.area)});
        } else {
            t.add_row({bench, std::to_string(T), caps, "integrated (paper)", "infeasible",
                       "-", "-"});
        }

        // Two-step baseline: a design exists even when it misses the cap
        // (st is infeasible but has_design holds the inspectable result).
        const flow_report ts = f.synthesizer("two_step").run();
        if (ts.has_design) {
            t.add_row({bench, std::to_string(T), caps, "two-step (" + ts.note + ")",
                       ts.st.ok() ? "yes" : "NO", strf("%.2f", ts.peak),
                       strf("%.0f", ts.area)});
        }

        // Schedule-then-bind with force-directed scheduling.
        const flow_report fds = f.synthesizer("fds_bind").run();
        if (fds.has_design) {
            t.add_row({bench, std::to_string(T), caps, "FDS + greedy bind",
                       fds.st.ok() ? "yes" : "NO", strf("%.2f", fds.peak),
                       strf("%.0f", fds.area)});
        }
        t.add_separator();
    }
    t.print(std::cout);

    std::cout << "\nintegrated flow met its cap on every feasible point: "
              << (integrated_always_meets ? "YES" : "NO") << '\n';
    return integrated_always_meets ? 0 : 1;
}
