// E7 -- the paper's integrated algorithm against the two algorithm
// families of its related work (§1):
//
//   (a) two-step: time-constrained synthesis first, then reorder the
//       schedule to cut the peak (refs [1,2] style);
//   (b) schedule-then-bind: force-directed scheduling (power-oblivious)
//       followed by greedy binding.
//
// For each paper benchmark at its paper latency constraints and a cap of
// 60 % of the unconstrained peak, the table reports whether each flow
// meets the cap and at what area.  The integrated flow is the only one
// that *guarantees* the cap (it treats power as a constraint, not a
// post-pass objective).
#include <iostream>

#include "cdfg/benchmarks.h"
#include "sched/force_directed.h"
#include "support/strings.h"
#include "support/table.h"
#include "synth/explore.h"
#include "synth/schedule_bind.h"
#include "synth/synthesizer.h"
#include "synth/two_step.h"

int main()
{
    using namespace phls;
    const module_library lib = table1_library();

    std::cout << "=== E7: integrated algorithm vs. baseline flows ===\n\n";
    ascii_table t({"benchmark", "T", "Pmax", "flow", "meets P", "peak", "area"});
    t.set_align(3, align::left);

    bool integrated_always_meets = true;
    for (const auto& [bench, T] :
         {std::pair<const char*, int>{"hal", 10}, {"hal", 17}, {"cosine", 12},
          {"cosine", 15}, {"cosine", 19}, {"elliptic", 22}}) {
        const graph g = benchmark_by_name(bench);
        // A challenging but feasible cap: 25 % above the feasibility cliff.
        double cliff = -1.0;
        for (const sweep_point& p :
             sweep_power(g, lib, T, default_power_grid(g, lib, T, 16))) {
            if (p.feasible) {
                cliff = p.cap;
                break;
            }
        }
        if (cliff < 0.0) continue;
        const double cap = 1.25 * cliff;
        const std::string caps = strf("%.2f", cap);

        // Integrated (this paper).
        const synthesis_result integrated = synthesize(g, lib, {T, cap});
        if (integrated.feasible) {
            const bool meets = integrated.dp.peak_power(lib) <= cap + 1e-9;
            integrated_always_meets = integrated_always_meets && meets;
            t.add_row({bench, std::to_string(T), caps, "integrated (paper)",
                       meets ? "yes" : "NO", strf("%.2f", integrated.dp.peak_power(lib)),
                       strf("%.0f", integrated.dp.area.total())});
        } else {
            t.add_row({bench, std::to_string(T), caps, "integrated (paper)", "infeasible",
                       "-", "-"});
        }

        // Two-step baseline.
        const two_step_result ts = two_step_synthesize(g, lib, {T, cap});
        if (ts.feasible) {
            t.add_row({bench, std::to_string(T), caps,
                       strf("two-step (peak %.2f before)", ts.peak_before),
                       ts.meets_power ? "yes" : "NO", strf("%.2f", ts.peak_after),
                       strf("%.0f", ts.dp.area.total())});
        }

        // Schedule-then-bind with force-directed scheduling.
        const module_assignment fastest = fastest_assignment(g, lib, unbounded_power);
        const fds_result fds = force_directed_schedule(g, lib, fastest, T);
        if (fds.feasible) {
            const datapath dp =
                bind_schedule(strf("%s_fds", bench), g, lib, fds.sched, cost_model{});
            const double peak = dp.peak_power(lib);
            t.add_row({bench, std::to_string(T), caps, "FDS + greedy bind",
                       peak <= cap + 1e-9 ? "yes" : "NO", strf("%.2f", peak),
                       strf("%.0f", dp.area.total())});
        }
        t.add_separator();
    }
    t.print(std::cout);

    std::cout << "\nintegrated flow met its cap on every feasible point: "
              << (integrated_always_meets ? "YES" : "NO") << '\n';
    return integrated_always_meets ? 0 : 1;
}
