// E1 -- regenerates Table 1 of the paper: the functional-unit library
// (module name, operations, area, clock cycles, power per cycle), plus
// the derived per-operation energy column for the serial/parallel
// multiplier trade the paper discusses.
#include <cstdio>
#include <iostream>

#include "library/library.h"
#include "support/strings.h"
#include "support/table.h"

int main()
{
    using namespace phls;
    const module_library lib = table1_library();

    std::cout << "=== Table 1: functional unit library (" << lib.name() << ") ===\n\n";
    ascii_table t({"Module", "Oprs", "Area", "Clk-cyc.", "P", "Energy/op"});
    t.set_align(1, align::left);
    for (const fu_module& m : lib.modules())
        t.add_row({m.name, m.ops_string(), strf("%.0f", m.area),
                   std::to_string(m.latency), strf("%.1f", m.power),
                   strf("%.1f", m.energy())});
    t.print(std::cout);

    std::cout << "\nPaper reference rows (DATE'03 Table 1):\n"
                 "  add {+} 87 1 2.5 | sub {-} 87 1 2.5 | comp {>} 8 1 2.5\n"
                 "  ALU {+,-,>} 97 1 2.5 | Mult(ser.) {*} 103 4 2.7\n"
                 "  Mult(par.) {*} 339 2 8.1 | input imp 16 1 0.2 | output xpt 16 1 1.7\n";
    std::cout << "\nNote: serial multiplier is cheaper in area (103 vs 339), power\n"
                 "(2.7 vs 8.1) and energy (10.8 vs 16.2) but twice as slow -- the\n"
                 "speed/power/area trade the synthesis explores.\n";
    return 0;
}
