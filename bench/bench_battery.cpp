// E4 -- the paper's motivation (its §1, citing Luo/Jha and Lahiri et
// al.): flattening the power profile extends battery lifetime, by up to
// 20-30 % for low-quality cells, even at comparable energy.
//
// Setup: synthesise each benchmark twice -- a conventional speed-first
// design (fastest modules, no power awareness: the spiky profile) and the
// battery-aware design at the tightest feasible cap (flat profile).  The
// periodic current loads drive three battery models at two timescales:
//
//   * circuit timescale (1 ms cycles): the ideal bucket isolates the pure
//     energy effect; Peukert's law adds the instantaneous-rate penalty
//     that punishes spikes.
//   * task timescale (0.5 s steps, same profile shapes): the
//     Rakhmatov-Vrudhula diffusion cell resolves spikes that are
//     comparable to its diffusion time constants (smaller beta = worse
//     cell).  At the circuit timescale, ms spikes average out inside a
//     diffusion cell -- a genuine physical effect, recorded in
//     EXPERIMENTS.md; the paper's cited 20-30 % gains come from
//     task-level scheduling work, which this scenario mirrors.
#include <iostream>

#include "battery/lifetime.h"
#include "cdfg/benchmarks.h"
#include "flow/flow.h"
#include "support/strings.h"
#include "support/table.h"

namespace {

constexpr double voltage = 1.0;

} // namespace

int main()
{
    using namespace phls;
    const module_library lib = table1_library();

    std::cout << "=== E4: battery lifetime, capped vs. uncapped designs ===\n";

    bool peukert_rewards_flatness = true;
    bool diffusion_rewards_flatness = true;
    for (const auto& [bench, T] : {std::pair<const char*, int>{"hal", 17},
                                   std::pair<const char*, int>{"elliptic", 22}}) {
        const graph g = benchmark_by_name(bench);

        // Baseline: conventional speed-first design (spiky profile).
        synthesis_options speed_first;
        speed_first.try_both_prospects = false;
        speed_first.policy = prospect_policy::fastest_fit;
        const flow_report base =
            flow::on(g).with_library(lib).latency(T).options(speed_first).run();
        if (!base.st.ok()) {
            std::cout << "unconstrained synthesis failed: " << base.st.to_string() << '\n';
            return 1;
        }
        const double peak0 = base.peak;

        // Battery-aware design: tightest feasible cap below the baseline.
        // The descending cap ladder is evaluated as one batch; the result
        // is the last feasible rung before the first infeasible one.
        const flow f = flow::on(g).with_library(lib).latency(T);
        std::vector<synthesis_constraints> ladder;
        for (double cap = 0.9 * peak0; cap >= 0.10 * peak0; cap -= 0.05 * peak0)
            ladder.push_back({T, cap});
        flow_report capped;
        for (const flow_report& r : f.run_batch(ladder)) {
            if (!r.st.ok()) break;
            capped = r;
        }
        if (!capped.st.ok() || !capped.has_design) {
            std::cout << "no capped design found below the baseline peak\n";
            return 1;
        }

        const power_profile spiky_profile = base.dp.sched.profile(lib);
        const power_profile flat_profile = capped.dp.sched.profile(lib);
        std::cout << strf("\n--- %s (T=%d): peak %.2f -> %.2f, energy/period %.2f -> %.2f, "
                          "area %.0f -> %.0f ---\n",
                          bench, T, peak0, capped.dp.peak_power(lib),
                          spiky_profile.energy(), flat_profile.energy(),
                          base.dp.area.total(), capped.dp.area.total());

        // --- Circuit timescale: ideal bucket vs Peukert. ---
        {
            const double dt = 1e-3;
            const load_profile spiky = to_load(spiky_profile, voltage, dt);
            const load_profile flat = to_load(flat_profile, voltage, dt);
            const double capacity = spiky_profile.energy() * dt / voltage * 1e4;

            ascii_table t({"model (1 ms cycles)", "life spiky (s)", "life flat (s)", "gain"});
            t.set_align(0, align::left);
            const auto ideal = make_ideal_battery(capacity);
            const double iu = ideal->lifetime(spiky).seconds;
            const double ic = ideal->lifetime(flat).seconds;
            const double ideal_gain = 100.0 * (ic - iu) / iu;
            t.add_row({"ideal bucket (energy only)", strf("%.1f", iu), strf("%.1f", ic),
                       strf("%+.1f%%", ideal_gain)});
            double last_peukert_gain = 0.0;
            for (double k : {1.1, 1.2, 1.3}) {
                const auto peukert = make_peukert_battery(capacity, k);
                const double pu = peukert->lifetime(spiky).seconds;
                const double pc = peukert->lifetime(flat).seconds;
                last_peukert_gain = 100.0 * (pc - pu) / pu;
                t.add_row({strf("Peukert k=%.1f", k), strf("%.1f", pu), strf("%.1f", pc),
                           strf("%+.1f%%", last_peukert_gain)});
            }
            t.print(std::cout);
            std::cout << strf("rate-sensitivity bonus over the energy effect: %+.1f%%\n",
                              last_peukert_gain - ideal_gain);
            peukert_rewards_flatness =
                peukert_rewards_flatness && last_peukert_gain > ideal_gain;
        }

        // --- Task timescale: Rakhmatov-Vrudhula diffusion cell. ---
        {
            const double dt = 0.5;
            const load_profile spiky = to_load(spiky_profile, voltage, dt);
            const load_profile flat = to_load(flat_profile, voltage, dt);
            const double alpha = spiky_profile.energy() * dt / voltage * 100.0;

            ascii_table t({"model (0.5 s steps)", "life spiky (s)", "life flat (s)", "gain"});
            t.set_align(0, align::left);
            const auto ideal = make_ideal_battery(alpha);
            const double iu = ideal->lifetime(spiky).seconds;
            const double ic = ideal->lifetime(flat).seconds;
            const double ideal_gain = 100.0 * (ic - iu) / iu;
            t.add_row({"ideal bucket (energy only)", strf("%.0f", iu), strf("%.0f", ic),
                       strf("%+.1f%%", ideal_gain)});
            double worst_cell_gain = 0.0;
            for (double beta : {1.0, 0.3, 0.1}) {
                const auto rak = make_rakhmatov_battery(alpha, beta);
                const double ru = rak->lifetime(spiky).seconds;
                const double rc = rak->lifetime(flat).seconds;
                worst_cell_gain = 100.0 * (rc - ru) / ru;
                t.add_row({strf("Rakhmatov beta=%.1f", beta), strf("%.0f", ru),
                           strf("%.0f", rc), strf("%+.1f%%", worst_cell_gain)});
            }
            t.print(std::cout);
            std::cout << strf("lowest-quality diffusion cell gain: %+.1f%% "
                              "(ideal: %+.1f%%; paper cites 20-30%%)\n",
                              worst_cell_gain, ideal_gain);
            diffusion_rewards_flatness =
                diffusion_rewards_flatness && worst_cell_gain > ideal_gain;
        }
    }
    const bool ok = peukert_rewards_flatness && diffusion_rewards_flatness;
    std::cout << "\npaper shape (rate-sensitive cells reward flattening beyond the "
                 "pure energy effect): "
              << (ok ? "YES" : "NO") << '\n';
    return ok ? 0 : 1;
}
